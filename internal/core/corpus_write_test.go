package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/bigmap/bigmap/internal/selffuzz/seedcorpus"
)

// TestWriteKernelCorpus regenerates testdata/fuzz/FuzzKernelEquivalence with
// the word-boundary trace/virgin pairs that historically distinguish the
// SIMD-shaped kernels from the scalar references: lengths straddling 8- and
// 64-byte boundaries, all-saturated traces, sparse single-hit words. Gated
// behind BIGMAP_WRITE_CORPUS=1; see internal/selffuzz for the workflow.
func TestWriteKernelCorpus(t *testing.T) {
	if os.Getenv("BIGMAP_WRITE_CORPUS") != "1" {
		t.Skip("set BIGMAP_WRITE_CORPUS=1 to regenerate testdata/fuzz corpora")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzKernelEquivalence")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	pairs := []struct {
		trace, virgin []byte
	}{
		{[]byte{}, []byte{}},
		{[]byte{1}, []byte{0xFF}},
		{[]byte{0, 0, 0, 0, 0, 0, 0, 1}, []byte{0xFF}},
		{bytes.Repeat([]byte{3}, 17), bytes.Repeat([]byte{0x55}, 17)},
		{bytes.Repeat([]byte{255}, 32), bytes.Repeat([]byte{0}, 32)},
		{[]byte{0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 127, 128, 255}, []byte{0xFF, 0xFE, 1, 0, 0x80, 0x0F}},
		// Word-boundary straddles: 63/64/65 bytes with a lone hit at the seam.
		{append(make([]byte, 62), 9), bytes.Repeat([]byte{0xFF}, 63)},
		{append(make([]byte, 63), 9), bytes.Repeat([]byte{0xFF}, 64)},
		{append(make([]byte, 64), 9), bytes.Repeat([]byte{0xFF}, 65)},
		// Virgin shorter than trace: the ragged-tail comparison path.
		{bytes.Repeat([]byte{2}, 24), bytes.Repeat([]byte{0xFF}, 5)},
	}
	for i, p := range pairs {
		name := "seed-" + string(rune('a'+i))
		if err := seedcorpus.WriteFile(dir, name, p.trace, p.virgin); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
