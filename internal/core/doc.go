// Package core implements the paper's primary contribution: coverage bitmaps
// for greybox fuzzing, in two flavours.
//
//   - AFLMap is the classic single-level scheme used by AFL: one byte of
//     hit-count storage per coverage key, with per-testcase reset, classify,
//     compare and hash operations that must traverse the entire map.
//   - BigMap is the paper's adaptive two-level scheme: an index bitmap lazily
//     maps each observed coverage key to the next free slot of a condensed
//     coverage bitmap, so every map operation except the update itself only
//     traverses the used region [0..used_key).
//
// Both implement the Map interface, so the fuzzer, executor and benchmark
// harness are agnostic to the scheme — mirroring the paper's claim that
// BigMap composes with any coverage metric recorded in a bitmap. The package
// also provides those metrics (edge hit count, N-gram, context-sensitive
// edge) as Metric implementations that translate basic-block events into
// coverage keys.
package core
