package executor

import (
	"fmt"
	"testing"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/target"
)

// BenchmarkExecLoop measures the full per-testcase pipeline (reset, execute
// with batched tracing, merged classify+compare) per scheme and map size —
// the executor's steady state. The acceptance bar for the batched pipeline
// is 0 allocs/op: every buffer (interpreter ring, tracer key buffer, map
// regions) is preallocated and reused.
func BenchmarkExecLoop(b *testing.B) {
	prog, err := target.Generate(target.GenSpec{
		Name:           "bench",
		Seed:           5,
		NumFuncs:       6,
		BlocksPerFunc:  24,
		InputLen:       32,
		BranchFraction: 0.6,
		Loops:          2,
		LoopMax:        8,
	})
	if err != nil {
		b.Fatal(err)
	}
	input := make([]byte, 32)
	for i := range input {
		input[i] = byte(i * 7)
	}
	for _, scheme := range []string{"afl", "bigmap"} {
		for _, size := range []int{core.MapSize64K, core.MapSize8M} {
			var m core.Map
			if scheme == "afl" {
				m, err = core.NewAFLMap(size)
			} else {
				m, err = core.NewBigMap(size)
			}
			if err != nil {
				b.Fatal(err)
			}
			metric, err := core.NewEdgeMetric(size)
			if err != nil {
				b.Fatal(err)
			}
			e, err := New(prog, metric, m, 0)
			if err != nil {
				b.Fatal(err)
			}
			virgin := m.NewVirgin()
			label := fmt.Sprintf("%s/%s", scheme, sizeLabel(size))
			b.Run(label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.Reset()
					res := e.Execute(input)
					if res.Status != target.StatusOK {
						b.Fatalf("status %v", res.Status)
					}
					m.ClassifyAndCompare(virgin)
				}
			})
		}
	}
}

func sizeLabel(size int) string {
	if size >= 1<<20 {
		return fmt.Sprintf("%dM", size>>20)
	}
	return fmt.Sprintf("%dk", size>>10)
}

// TestExecLoopZeroAllocs is the regression test behind the benchmark's
// 0 allocs/op claim, so it fails in plain `go test` runs and not only when
// someone reads benchmark output.
func TestExecLoopZeroAllocs(t *testing.T) {
	m, err := core.NewBigMap(core.MapSize8M)
	if err != nil {
		t.Fatal(err)
	}
	metric, err := core.NewEdgeMetric(core.MapSize8M)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := target.Generate(target.GenSpec{
		Name:           "allocs",
		Seed:           9,
		NumFuncs:       4,
		BlocksPerFunc:  16,
		InputLen:       32,
		BranchFraction: 0.5,
		Loops:          1,
		LoopMax:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(prog, metric, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	virgin := m.NewVirgin()
	input := make([]byte, 32)

	// Warm: discover all slots this input touches and absorb them into
	// virgin so the steady state has no slot-assignment appends left.
	m.Reset()
	e.Execute(input)
	m.ClassifyAndCompare(virgin)

	allocs := testing.AllocsPerRun(50, func() {
		m.Reset()
		e.Execute(input)
		m.ClassifyAndCompare(virgin)
	})
	if allocs != 0 {
		t.Errorf("exec loop allocates %.2f per exec, want 0", allocs)
	}
}

// TestBatchedTracerMatchesScalarCoverage replays the same inputs through the
// batched executor pipeline and a hand-rolled scalar tracer and requires
// identical coverage maps — the executor-level differential check.
func TestBatchedTracerMatchesScalarCoverage(t *testing.T) {
	prog := testProgram(t)
	size := core.MapSize64K

	batched, _ := core.NewBigMap(size)
	metricB, _ := core.NewEdgeMetric(size)
	e, err := New(prog, metricB, batched, 0)
	if err != nil {
		t.Fatal(err)
	}

	scalar, _ := core.NewBigMap(size)
	metricS, _ := core.NewEdgeMetric(size)
	interp := target.NewInterp(prog)
	st := scalarTracer{metric: metricS, cov: scalar}

	for trial := 0; trial < 50; trial++ {
		input := make([]byte, 32)
		for i := range input {
			input[i] = byte(trial*31 + i)
		}
		batched.Reset()
		scalar.Reset()
		e.Execute(input)
		metricS.Begin()
		interp.Run(input, &st, 0)

		if batched.Hash() != scalar.Hash() {
			t.Fatalf("trial %d: coverage diverged between batched and scalar tracing", trial)
		}
		if batched.UsedKeys() != scalar.UsedKeys() {
			t.Fatalf("trial %d: used keys %d vs %d", trial, batched.UsedKeys(), scalar.UsedKeys())
		}
	}
}

// scalarTracer is the pre-batching pipeline: one virtual Add per edge event.
type scalarTracer struct {
	metric core.Metric
	cov    core.Map
}

func (t *scalarTracer) Visit(block uint32) { t.cov.Add(t.metric.Visit(block)) }
func (t *scalarTracer) EnterCall(s uint32) { t.metric.EnterCall(s) }
func (t *scalarTracer) LeaveCall()         { t.metric.LeaveCall() }
