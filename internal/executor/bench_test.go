package executor

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/target"
)

// BenchmarkExecLoop measures the full per-testcase pipeline (reset, execute
// with batched tracing, merged classify+compare) per scheme and map size —
// the executor's steady state. The acceptance bar for the batched pipeline
// is 0 allocs/op: every buffer (interpreter ring, tracer key buffer, map
// regions) is preallocated and reused.
func BenchmarkExecLoop(b *testing.B) {
	prog, err := target.Generate(target.GenSpec{
		Name:           "bench",
		Seed:           5,
		NumFuncs:       6,
		BlocksPerFunc:  24,
		InputLen:       32,
		BranchFraction: 0.6,
		Loops:          2,
		LoopMax:        8,
	})
	if err != nil {
		b.Fatal(err)
	}
	input := make([]byte, 32)
	for i := range input {
		input[i] = byte(i * 7)
	}
	for _, scheme := range []string{"afl", "bigmap"} {
		for _, size := range []int{core.MapSize64K, core.MapSize8M} {
			var m core.Map
			if scheme == "afl" {
				m, err = core.NewAFLMap(size)
			} else {
				m, err = core.NewBigMap(size)
			}
			if err != nil {
				b.Fatal(err)
			}
			metric, err := core.NewEdgeMetric(size)
			if err != nil {
				b.Fatal(err)
			}
			e, err := New(prog, metric, m, 0)
			if err != nil {
				b.Fatal(err)
			}
			virgin := m.NewVirgin()
			label := fmt.Sprintf("%s/%s", scheme, sizeLabel(size))
			b.Run(label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.Reset()
					res := e.Execute(input)
					if res.Status != target.StatusOK {
						b.Fatalf("status %v", res.Status)
					}
					m.ClassifyAndCompare(virgin)
				}
			})
		}
	}
}

// BenchmarkExecLoopSelective measures the selective-tracing steady state:
// the same pipeline as BenchmarkExecLoop, but the read-only MaybeNew
// prefilter gates the classify+compare traversal. The warm-up absorbs the
// input's coverage into virgin, so every measured iteration is the
// non-discovering common case — the filter skips the classify-store and
// virgin-update work entirely.
func BenchmarkExecLoopSelective(b *testing.B) {
	prog, err := target.Generate(target.GenSpec{
		Name:           "bench",
		Seed:           5,
		NumFuncs:       6,
		BlocksPerFunc:  24,
		InputLen:       32,
		BranchFraction: 0.6,
		Loops:          2,
		LoopMax:        8,
	})
	if err != nil {
		b.Fatal(err)
	}
	input := make([]byte, 32)
	for i := range input {
		input[i] = byte(i * 7)
	}
	for _, scheme := range []string{"afl", "bigmap"} {
		for _, size := range []int{core.MapSize64K, core.MapSize8M} {
			var m core.Map
			if scheme == "afl" {
				m, err = core.NewAFLMap(size)
			} else {
				m, err = core.NewBigMap(size)
			}
			if err != nil {
				b.Fatal(err)
			}
			metric, err := core.NewEdgeMetric(size)
			if err != nil {
				b.Fatal(err)
			}
			e, err := New(prog, metric, m, 0)
			if err != nil {
				b.Fatal(err)
			}
			virgin := m.NewVirgin()
			m.Reset()
			e.Execute(input)
			m.ClassifyAndCompare(virgin)
			label := fmt.Sprintf("%s/%s", scheme, sizeLabel(size))
			b.Run(label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.Reset()
					res := e.Execute(input)
					if res.Status != target.StatusOK {
						b.Fatalf("status %v", res.Status)
					}
					if m.MaybeNew(virgin) {
						m.ClassifyAndCompare(virgin)
					}
				}
			})
		}
	}
}

// BenchmarkExecLoopBatched measures ExecuteBatch in its selective steady
// state: batches of inputs whose coverage virgin has already absorbed, so the
// whole batch rides the filter's skip path through one pipeline call.
func BenchmarkExecLoopBatched(b *testing.B) {
	const batchSize = 32
	prog, err := target.Generate(target.GenSpec{
		Name:           "bench",
		Seed:           5,
		NumFuncs:       6,
		BlocksPerFunc:  24,
		InputLen:       32,
		BranchFraction: 0.6,
		Loops:          2,
		LoopMax:        8,
	})
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([][]byte, batchSize)
	for n := range inputs {
		in := make([]byte, 32)
		for i := range in {
			in[i] = byte(i*7 + n)
		}
		inputs[n] = in
	}
	for _, scheme := range []string{"afl", "bigmap"} {
		for _, size := range []int{core.MapSize64K, core.MapSize8M} {
			var m core.Map
			if scheme == "afl" {
				m, err = core.NewAFLMap(size)
			} else {
				m, err = core.NewBigMap(size)
			}
			if err != nil {
				b.Fatal(err)
			}
			metric, err := core.NewEdgeMetric(size)
			if err != nil {
				b.Fatal(err)
			}
			e, err := New(prog, metric, m, 0)
			if err != nil {
				b.Fatal(err)
			}
			virgin := m.NewVirgin()
			for _, in := range inputs {
				m.Reset()
				e.Execute(in)
				m.ClassifyAndCompare(virgin)
			}
			visit := func(i int, res target.Result, verdict core.Verdict, skipped bool) {
				if res.Status != target.StatusOK {
					b.Fatalf("status %v", res.Status)
				}
			}
			label := fmt.Sprintf("%s/%s", scheme, sizeLabel(size))
			b.Run(label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i += batchSize {
					e.ExecuteBatch(inputs, virgin, true, visit)
				}
			})
		}
	}
}

func sizeLabel(size int) string {
	if size >= 1<<20 {
		return fmt.Sprintf("%dM", size>>20)
	}
	return fmt.Sprintf("%dk", size>>10)
}

// TestExecLoopZeroAllocs is the regression test behind the benchmark's
// 0 allocs/op claim, so it fails in plain `go test` runs and not only when
// someone reads benchmark output.
func TestExecLoopZeroAllocs(t *testing.T) {
	m, err := core.NewBigMap(core.MapSize8M)
	if err != nil {
		t.Fatal(err)
	}
	metric, err := core.NewEdgeMetric(core.MapSize8M)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := target.Generate(target.GenSpec{
		Name:           "allocs",
		Seed:           9,
		NumFuncs:       4,
		BlocksPerFunc:  16,
		InputLen:       32,
		BranchFraction: 0.5,
		Loops:          1,
		LoopMax:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(prog, metric, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	virgin := m.NewVirgin()
	input := make([]byte, 32)

	// Warm: discover all slots this input touches and absorb them into
	// virgin so the steady state has no slot-assignment appends left.
	m.Reset()
	e.Execute(input)
	m.ClassifyAndCompare(virgin)

	allocs := testing.AllocsPerRun(50, func() {
		m.Reset()
		e.Execute(input)
		m.ClassifyAndCompare(virgin)
	})
	if allocs != 0 {
		t.Errorf("exec loop allocates %.2f per exec, want 0", allocs)
	}
}

// TestExecLoopZeroAllocsSelective extends the 0 allocs/op guard to the
// selective pipeline and to ExecuteBatch: neither the prefilter nor the
// batched loop may allocate in steady state.
func TestExecLoopZeroAllocsSelective(t *testing.T) {
	m, err := core.NewBigMap(core.MapSize8M)
	if err != nil {
		t.Fatal(err)
	}
	metric, err := core.NewEdgeMetric(core.MapSize8M)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := target.Generate(target.GenSpec{
		Name:           "allocs",
		Seed:           9,
		NumFuncs:       4,
		BlocksPerFunc:  16,
		InputLen:       32,
		BranchFraction: 0.5,
		Loops:          1,
		LoopMax:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(prog, metric, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	virgin := m.NewVirgin()
	input := make([]byte, 32)

	m.Reset()
	e.Execute(input)
	m.ClassifyAndCompare(virgin)

	allocs := testing.AllocsPerRun(50, func() {
		m.Reset()
		e.Execute(input)
		if m.MaybeNew(virgin) {
			m.ClassifyAndCompare(virgin)
		}
	})
	if allocs != 0 {
		t.Errorf("selective exec loop allocates %.2f per exec, want 0", allocs)
	}

	inputs := [][]byte{input, input, input, input}
	visit := func(i int, res target.Result, verdict core.Verdict, skipped bool) {
		if !skipped {
			t.Error("warm steady-state batch execution was not skipped")
		}
	}
	batchAllocs := testing.AllocsPerRun(50, func() {
		e.ExecuteBatch(inputs, virgin, true, visit)
	})
	if batchAllocs != 0 {
		t.Errorf("ExecuteBatch allocates %.2f per batch, want 0", batchAllocs)
	}
}

// TestExecuteBatchMatchesSequential is the executor-level soundness pin for
// selective batching: the same input stream through (a) the classic
// always-traced sequential pipeline and (b) ExecuteBatch with the filter on
// must produce identical virgin state, identical verdicts for every unskipped
// input, and skips exactly where the traced pipeline said VerdictNone.
func TestExecuteBatchMatchesSequential(t *testing.T) {
	prog := testProgram(t)
	const size = core.MapSize64K

	for _, scheme := range []string{"afl", "bigmap"} {
		newMap := func() core.Map {
			var m core.Map
			var err error
			if scheme == "afl" {
				m, err = core.NewAFLMap(size)
			} else {
				m, err = core.NewBigMap(size)
			}
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		traced := newMap()
		metricT, _ := core.NewEdgeMetric(size)
		et, err := New(prog, metricT, traced, 0)
		if err != nil {
			t.Fatal(err)
		}
		selective := newMap()
		metricS, _ := core.NewEdgeMetric(size)
		es, err := New(prog, metricS, selective, 0)
		if err != nil {
			t.Fatal(err)
		}
		vt, vs := traced.NewVirgin(), selective.NewVirgin()

		inputs := make([][]byte, 64)
		for n := range inputs {
			in := make([]byte, 32)
			for i := range in {
				in[i] = byte(n*13 + i*7)
			}
			inputs[n] = in
		}

		wantVerdicts := make([]core.Verdict, len(inputs))
		decided := make([]bool, len(inputs))
		for i, in := range inputs {
			traced.Reset()
			res := et.Execute(in)
			if res.Status != target.StatusOK {
				continue // non-OK traces belong to crash/hang virgins, not vt
			}
			decided[i] = true
			wantVerdicts[i] = traced.ClassifyAndCompare(vt)
		}

		skips := 0
		es.ExecuteBatch(inputs, vs, true, func(i int, res target.Result, verdict core.Verdict, skipped bool) {
			if res.Status != target.StatusOK {
				if decided[i] {
					t.Fatalf("%s input %d: status diverged between traced and batch runs", scheme, i)
				}
				if skipped || verdict != core.VerdictNone {
					t.Fatalf("%s input %d: non-OK execution must arrive undecided (skipped=%v verdict=%v)", scheme, i, skipped, verdict)
				}
				return
			}
			if !decided[i] {
				t.Fatalf("%s input %d: status diverged between traced and batch runs", scheme, i)
			}
			if skipped {
				skips++
				if wantVerdicts[i] != core.VerdictNone {
					t.Fatalf("%s input %d: filter skipped a %v execution", scheme, i, wantVerdicts[i])
				}
				return
			}
			if verdict != wantVerdicts[i] {
				t.Fatalf("%s input %d: batch verdict %v, traced %v", scheme, i, verdict, wantVerdicts[i])
			}
			if verdict == core.VerdictNone {
				t.Fatalf("%s input %d: filter passed a VerdictNone execution (filter must be exact)", scheme, i)
			}
		})
		if skips == 0 {
			t.Fatalf("%s: no executions were skipped; the steady state never arrived", scheme)
		}
		if !bytes.Equal(vt.Bits(), vs.Bits()) {
			t.Fatalf("%s: virgin state diverged between traced and selective batch", scheme)
		}
		if vt.CountDiscovered() != vs.CountDiscovered() {
			t.Fatalf("%s: discovered %d vs %d", scheme, vt.CountDiscovered(), vs.CountDiscovered())
		}
	}
}

// TestBatchedTracerMatchesScalarCoverage replays the same inputs through the
// batched executor pipeline and a hand-rolled scalar tracer and requires
// identical coverage maps — the executor-level differential check.
func TestBatchedTracerMatchesScalarCoverage(t *testing.T) {
	prog := testProgram(t)
	size := core.MapSize64K

	batched, _ := core.NewBigMap(size)
	metricB, _ := core.NewEdgeMetric(size)
	e, err := New(prog, metricB, batched, 0)
	if err != nil {
		t.Fatal(err)
	}

	scalar, _ := core.NewBigMap(size)
	metricS, _ := core.NewEdgeMetric(size)
	interp := target.NewInterp(prog)
	st := scalarTracer{metric: metricS, cov: scalar}

	for trial := 0; trial < 50; trial++ {
		input := make([]byte, 32)
		for i := range input {
			input[i] = byte(trial*31 + i)
		}
		batched.Reset()
		scalar.Reset()
		e.Execute(input)
		metricS.Begin()
		interp.Run(input, &st, 0)

		if batched.Hash() != scalar.Hash() {
			t.Fatalf("trial %d: coverage diverged between batched and scalar tracing", trial)
		}
		if batched.UsedKeys() != scalar.UsedKeys() {
			t.Fatalf("trial %d: used keys %d vs %d", trial, batched.UsedKeys(), scalar.UsedKeys())
		}
	}
}

// scalarTracer is the pre-batching pipeline: one virtual Add per edge event.
type scalarTracer struct {
	metric core.Metric
	cov    core.Map
}

func (t *scalarTracer) Visit(block uint32) { t.cov.Add(t.metric.Visit(block)) }
func (t *scalarTracer) EnterCall(s uint32) { t.metric.EnterCall(s) }
func (t *scalarTracer) LeaveCall()         { t.metric.LeaveCall() }
