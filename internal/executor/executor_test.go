package executor

import (
	"errors"
	"testing"
	"time"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

func testProgram(t *testing.T) *target.Program {
	t.Helper()
	prog, err := target.Generate(target.GenSpec{
		Name:           "exec",
		Seed:           3,
		NumFuncs:       4,
		BlocksPerFunc:  12,
		InputLen:       32,
		BranchFraction: 0.6,
		Loops:          2,
		LoopMax:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func newExec(t *testing.T, m core.Map) *Executor {
	t.Helper()
	metric, err := core.NewEdgeMetric(m.Size())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(testProgram(t), metric, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidatesArgs(t *testing.T) {
	m, _ := core.NewAFLMap(core.MapSize64K)
	metric, _ := core.NewEdgeMetric(core.MapSize64K)
	if _, err := New(nil, metric, m, 0); !errors.Is(err, ErrNilDependency) {
		t.Errorf("nil program: err = %v", err)
	}
	if _, err := New(testProgram(t), nil, m, 0); !errors.Is(err, ErrNilDependency) {
		t.Errorf("nil metric: err = %v", err)
	}
	if _, err := New(testProgram(t), metric, nil, 0); !errors.Is(err, ErrNilDependency) {
		t.Errorf("nil map: err = %v", err)
	}
}

func TestExecuteRecordsCoverage(t *testing.T) {
	m, _ := core.NewAFLMap(core.MapSize64K)
	e := newExec(t, m)
	m.Reset()
	res := e.Execute(make([]byte, 32))
	if res.Status != target.StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	if m.CountNonZero() == 0 {
		t.Error("no coverage recorded")
	}
}

func TestExecuteDeterministicAcrossSchemes(t *testing.T) {
	// The same input must touch the same number of distinct edges and
	// yield the same verdict sequence under both map schemes.
	afl, _ := core.NewAFLMap(core.MapSize64K)
	big, _ := core.NewBigMap(core.MapSize64K)
	ea := newExec(t, afl)
	eb := newExec(t, big)
	va := afl.NewVirgin()
	vb := big.NewVirgin()

	src := rng.New(21)
	for i := 0; i < 100; i++ {
		input := make([]byte, 32)
		src.Bytes(input)

		afl.Reset()
		ra := ea.Execute(input)
		verdictA := afl.ClassifyAndCompare(va)

		big.Reset()
		rb := eb.Execute(input)
		verdictB := big.ClassifyAndCompare(vb)

		if ra.Status != rb.Status {
			t.Fatalf("input %d: status %v vs %v", i, ra.Status, rb.Status)
		}
		if verdictA != verdictB {
			t.Fatalf("input %d: verdict %v vs %v", i, verdictA, verdictB)
		}
		if afl.CountNonZero() != big.CountNonZero() {
			t.Fatalf("input %d: edges %d vs %d", i, afl.CountNonZero(), big.CountNonZero())
		}
	}
	if va.CountDiscovered() != vb.CountDiscovered() {
		t.Errorf("discovered totals diverged: %d vs %d", va.CountDiscovered(), vb.CountDiscovered())
	}
}

func TestExecuteResetBetweenRunsMatters(t *testing.T) {
	m, _ := core.NewBigMap(core.MapSize64K)
	e := newExec(t, m)

	m.Reset()
	e.Execute(make([]byte, 32))
	first := m.CountNonZero()

	// Without a reset, counts accumulate.
	e.Execute(make([]byte, 32))
	if m.CountNonZero() < first {
		t.Error("coverage shrank without reset")
	}

	m.Reset()
	e.Execute(make([]byte, 32))
	if got := m.CountNonZero(); got != first {
		t.Errorf("after reset, edges = %d, want %d (deterministic target)", got, first)
	}
}

func TestExecutorAccessors(t *testing.T) {
	m, _ := core.NewAFLMap(core.MapSize64K)
	e := newExec(t, m)
	if e.Map() != core.Map(m) {
		t.Error("Map accessor wrong")
	}
	if e.Metric().Name() != "edge" {
		t.Error("Metric accessor wrong")
	}
	if e.Program().Name != "exec" {
		t.Error("Program accessor wrong")
	}
	if e.Budget() != DefaultBudget {
		t.Errorf("Budget = %d, want default", e.Budget())
	}
}

func TestExecuteWithNGramMetric(t *testing.T) {
	m, _ := core.NewBigMap(core.MapSize64K)
	metric, err := core.NewNGramMetric(core.MapSize64K, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(testProgram(t), metric, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if res := e.Execute(make([]byte, 32)); res.Status != target.StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	nEdge := m.CountNonZero()
	if nEdge == 0 {
		t.Fatal("ngram metric recorded nothing")
	}
}

func TestSetCostFactorSimulatesWork(t *testing.T) {
	m, _ := core.NewBigMap(core.MapSize64K)
	e := newExec(t, m)

	input := make([]byte, 32)
	start := time.Now()
	for i := 0; i < 200; i++ {
		e.Execute(input)
	}
	baseline := time.Since(start)

	e.SetCostFactor(2000)
	start = time.Now()
	for i := 0; i < 200; i++ {
		e.Execute(input)
	}
	simulated := time.Since(start)

	if simulated < baseline*2 {
		t.Errorf("cost factor had no effect: baseline %v, simulated %v", baseline, simulated)
	}

	// Negative factors clamp to off.
	e.SetCostFactor(-5)
	start = time.Now()
	for i := 0; i < 200; i++ {
		e.Execute(input)
	}
	if off := time.Since(start); off > simulated {
		t.Errorf("negative factor did not disable simulation: %v > %v", off, simulated)
	}
}
