// Package executor runs test cases against an instrumented target, wiring
// the target's block-event stream through a coverage metric into a coverage
// map — the role AFL's instrumentation shim and shared-memory segment play.
//
// The executor is the persistent-mode analogue of the paper's setup (§V-A):
// the interpreter, metric and map are reused across executions with no
// process creation or reinitialization, so per-testcase cost is execution
// plus map operations, exactly the breakdown of Figure 3.
package executor

import (
	"errors"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/target"
)

// DefaultBudget is the default per-execution virtual cycle budget (the
// analogue of AFL's exec timeout).
const DefaultBudget = 1 << 22

// ErrNilDependency is returned when a required constructor argument is nil.
var ErrNilDependency = errors.New("executor: program, metric and map are required")

// Executor executes inputs against one program with one metric and one
// coverage map. Not safe for concurrent use; each fuzzing instance owns one.
type Executor struct {
	runner     target.Runner
	metric     core.Metric
	cov        core.Map
	budget     uint64
	costFactor int
	costSink   uint64
	tracer     mapTracer
}

// keyBufLen is the capacity of the tracer's coverage-key buffer. It must be
// at least the interpreter's trace ring size (one VisitBatch never overflows
// an empty buffer) and is sized so a typical execution flushes into the map
// once or twice.
const keyBufLen = 4096

// mapTracer adapts a Metric + Map pair to the target.BatchTracer interface.
// This is the hot path. The interpreter delivers visited blocks a ring at a
// time through VisitBatch; keys are derived and buffered, then flushed into
// the map through one AddBatch call when the buffer fills and once at the
// end of each execution — so the per-edge virtual Map.Add of the scalar
// pipeline disappears, while the recorded coverage is exactly Listing 1
// (AFL) or Listing 2 (BigMap) per edge event.
//
// When the metric is the common *core.EdgeMetric, key derivation goes
// through a concrete (inlinable) method call instead of the Metric
// interface — the second devirtualization in the loop.
type mapTracer struct {
	metric core.Metric
	edge   *core.EdgeMetric // non-nil fast path when metric is the edge metric
	cov    core.Map
	keys   []uint32 // buffered coverage keys, flushed via cov.AddBatch
}

var _ target.BatchTracer = (*mapTracer)(nil)

// Visit handles the scalar path (kept for Tracer conformance and for any
// non-batching interpreter).
func (t *mapTracer) Visit(block uint32) {
	t.cov.Add(t.metric.Visit(block))
}

// VisitBatch derives one coverage key per visited block and buffers them.
// The interpreter's ring never exceeds the buffer capacity, so after a flush
// the whole batch always fits.
//
//bigmap:hotpath BatchTracer callback, runs once per trace-ring flush inside every execution
func (t *mapTracer) VisitBatch(blocks []uint32) {
	keys := t.keys
	if len(keys)+len(blocks) > cap(keys) {
		t.cov.AddBatch(keys)
		keys = keys[:0]
	}
	if t.edge != nil {
		for _, b := range blocks {
			keys = append(keys, t.edge.Visit(b)) //bigmap:alloc-ok never reallocates: the flush above guarantees the batch fits keyBufLen capacity
		}
	} else {
		for _, b := range blocks {
			keys = append(keys, t.metric.Visit(b)) //bigmap:alloc-ok never reallocates: the flush above guarantees the batch fits keyBufLen capacity
		}
	}
	t.keys = keys
}

// flush records any still-buffered keys into the map. Must run before the
// map is read; Execute calls it after every run.
func (t *mapTracer) flush() {
	if len(t.keys) > 0 {
		t.cov.AddBatch(t.keys)
		t.keys = t.keys[:0]
	}
}

func (t *mapTracer) EnterCall(site uint32) { t.metric.EnterCall(site) }
func (t *mapTracer) LeaveCall()            { t.metric.LeaveCall() }

// New creates an executor running the clean interpreter. budget is the
// per-execution cycle budget; pass 0 for DefaultBudget.
func New(prog *target.Program, metric core.Metric, cov core.Map, budget uint64) (*Executor, error) {
	if prog == nil {
		return nil, ErrNilDependency
	}
	return NewWithRunner(target.NewInterp(prog), metric, cov, budget)
}

// NewWithRunner creates an executor driving an arbitrary target runner — the
// clean interpreter, a fault-injected wrapper, or anything else satisfying
// the Runner contract.
func NewWithRunner(runner target.Runner, metric core.Metric, cov core.Map, budget uint64) (*Executor, error) {
	if runner == nil || metric == nil || cov == nil {
		return nil, ErrNilDependency
	}
	if budget == 0 {
		budget = DefaultBudget
	}
	edge, _ := metric.(*core.EdgeMetric)
	return &Executor{
		runner: runner,
		metric: metric,
		cov:    cov,
		budget: budget,
		tracer: mapTracer{
			metric: metric,
			edge:   edge,
			cov:    cov,
			keys:   make([]uint32, 0, keyBufLen),
		},
	}, nil
}

// Map returns the coverage map the executor records into.
func (e *Executor) Map() core.Map { return e.cov }

// Metric returns the coverage metric in use.
func (e *Executor) Metric() core.Metric { return e.metric }

// Program returns the target program.
func (e *Executor) Program() *target.Program { return e.runner.Program() }

// Runner returns the target runner (for fault-state checkpointing).
func (e *Executor) Runner() target.Runner { return e.runner }

// Budget returns the per-execution cycle budget.
func (e *Executor) Budget() uint64 { return e.budget }

// SetCostFactor calibrates simulated execution cost: after each run the
// executor performs costFactor units of CPU work per virtual cycle the
// target consumed. The synthetic interpreter is far cheaper per basic block
// than a real instrumented binary, which would make map operations look
// disproportionately expensive at AFL's native 64kB size; a non-zero cost
// factor restores the paper's regime, where target execution dominates on
// small maps (Figure 3, 64kB bars) and the map operations only take over as
// the map grows. Zero (the default) disables the simulation.
func (e *Executor) SetCostFactor(factor int) {
	if factor < 0 {
		factor = 0
	}
	e.costFactor = factor
}

// Execute runs one input, recording coverage into the map. The caller is
// responsible for resetting the map beforehand and classifying/comparing it
// afterwards — the fuzzer owns that pipeline so it can time each phase
// separately (Figure 3) and choose merged or split classify+compare (§IV-E).
//
//bigmap:hotpath the per-exec loop: one call per fuzzing execution
func (e *Executor) Execute(input []byte) target.Result {
	e.metric.Begin()
	e.tracer.keys = e.tracer.keys[:0] // drop any keys a panicking prior run left behind
	res := e.runner.Run(input, &e.tracer, e.budget)
	e.tracer.flush()
	if e.costFactor > 0 {
		e.simulateWork(res.Cycles * uint64(e.costFactor))
	}
	return res
}

// ExecuteBatch runs a batch of inputs back-to-back through the full
// per-testcase pipeline — reset, execute, coverage decision — invoking visit
// for every input while its trace is still live in the map, so the caller can
// hash, snapshot or enqueue before the next input's reset wipes it.
//
// Only StatusOK results are decided against virgin. A crashing or hanging
// execution belongs to a different virgin map (the fuzzer keeps separate
// crash and hang virgins), so deciding it here would pollute the one provided;
// instead visit receives VerdictNone with skipped=false and a raw
// (unclassified) trace, and the callback owns the coverage decision while the
// trace is still live.
//
// With selective true, each StatusOK input goes through the read-only
// MaybeNew prefilter first: when it reports nothing new, visit receives
// VerdictNone with skipped=true and the classify-and-compare traversal never
// runs — the trace bytes the callback sees then hold raw hit counts, not
// bucket bits. Because the prefilter is exact (core.Map.MaybeNew), the
// skipped executions are precisely those the full traversal would have judged
// VerdictNone, and the virgin map ends the batch bitwise-identical to the
// always-traced path.
//
// Batching amortizes the per-execution pipeline overhead: one call sets up
// the tracer and metric once, the map Reset folds into the loop (for BigMap
// the high-water mark keeps each reset proportional to the previous trace,
// so consecutive executions of similar inputs clear only what they touched),
// and the filter's skip removes the classify-store and virgin-update work
// for the non-discovering majority of inputs.
//
//bigmap:hotpath the batched exec loop: reset, execute and coverage decision per input
func (e *Executor) ExecuteBatch(inputs [][]byte, virgin *core.Virgin, selective bool,
	visit func(i int, res target.Result, verdict core.Verdict, skipped bool)) {
	for i, input := range inputs {
		e.cov.Reset()
		res := e.Execute(input)
		if res.Status != target.StatusOK {
			visit(i, res, core.VerdictNone, false)
			continue
		}
		if selective && !e.cov.MaybeNew(virgin) {
			visit(i, res, core.VerdictNone, true)
			continue
		}
		visit(i, res, e.cov.ClassifyAndCompare(virgin), false)
	}
}

// simulateWork burns CPU deterministically, standing in for the native
// instructions a real target would execute between coverage updates. The
// accumulated sink prevents the loop from being optimized away.
func (e *Executor) simulateWork(units uint64) {
	sink := e.costSink
	for i := uint64(0); i < units; i++ {
		sink ^= sink<<13 ^ i
		sink ^= sink >> 7
		sink ^= sink << 17
	}
	e.costSink = sink
}
