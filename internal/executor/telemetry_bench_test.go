package executor

import (
	"testing"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/target"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// benchRig builds the steady-state exec pipeline used by the telemetry
// overhead tests: a warmed BigMap whose slots are all assigned and absorbed
// into virgin, so the loop under measurement does no discovery work.
func benchRig(tb testing.TB) (m *core.BigMap, e *Executor, virgin *core.Virgin, input []byte) {
	tb.Helper()
	m, err := core.NewBigMap(core.MapSize8M)
	if err != nil {
		tb.Fatal(err)
	}
	metric, err := core.NewEdgeMetric(core.MapSize8M)
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := target.Generate(target.GenSpec{
		Name:           "tel-overhead",
		Seed:           11,
		NumFuncs:       4,
		BlocksPerFunc:  16,
		InputLen:       32,
		BranchFraction: 0.5,
		Loops:          1,
		LoopMax:        4,
	})
	if err != nil {
		tb.Fatal(err)
	}
	e, err = New(prog, metric, m, 0)
	if err != nil {
		tb.Fatal(err)
	}
	virgin = m.NewVirgin()
	input = make([]byte, 32)
	m.Reset()
	e.Execute(input)
	m.ClassifyAndCompare(virgin)
	return m, e, virgin, input
}

// TestExecLoopZeroAllocsTelemetry is the overhead guard for the telemetry
// layer: the exec loop must stay 0 allocs/op both with telemetry disabled
// (nil handles — the shipped default) and with it enabled (recording is
// atomic adds into preallocated buckets, no allocation either).
func TestExecLoopZeroAllocsTelemetry(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		m, e, virgin, input := benchRig(t)
		m.Instrument(telemetry.NewMapOps(nil, "bigmap")) // explicit all-nil bundle
		allocs := testing.AllocsPerRun(50, func() {
			m.Reset()
			e.Execute(input)
			m.ClassifyAndCompare(virgin)
		})
		if allocs != 0 {
			t.Errorf("telemetry-disabled exec loop allocates %.2f per exec, want 0", allocs)
		}
	})
	t.Run("enabled", func(t *testing.T) {
		reg := telemetry.New()
		if reg == nil {
			t.Skip("telemetry compiled out (bigmapnotel)")
		}
		m, e, virgin, input := benchRig(t)
		m.Instrument(telemetry.NewMapOps(reg, "bigmap"))
		allocs := testing.AllocsPerRun(50, func() {
			m.Reset()
			e.Execute(input)
			m.ClassifyAndCompare(virgin)
		})
		if allocs != 0 {
			t.Errorf("telemetry-enabled exec loop allocates %.2f per exec, want 0", allocs)
		}
		if n := reg.Histogram("map_bigmap_reset_ns").Count(); n == 0 {
			t.Error("enabled run recorded nothing into map_bigmap_reset_ns")
		}
	})
}

// BenchmarkExecLoopTelemetry compares the per-exec pipeline with telemetry
// off (nil handles) and on (live histograms), quantifying the cost the nil
// fast path avoids and the clock reads the enabled path pays.
func BenchmarkExecLoopTelemetry(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			m, e, virgin, input := benchRig(b)
			if mode == "on" {
				reg := telemetry.New()
				if reg == nil {
					b.Skip("telemetry compiled out (bigmapnotel)")
				}
				m.Instrument(telemetry.NewMapOps(reg, "bigmap"))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				res := e.Execute(input)
				if res.Status != target.StatusOK {
					b.Fatalf("status %v", res.Status)
				}
				m.ClassifyAndCompare(virgin)
			}
		})
	}
}
