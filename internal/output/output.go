// Package output persists fuzzing sessions in an AFL-style output
// directory, so campaigns can be inspected with ordinary tools and corpora
// can be re-used across runs:
//
//	<dir>/queue/id:000042,src:havoc        queue entries
//	<dir>/crashes/id:000003,sig:deadbeef   one input per unique crash bucket
//	<dir>/hangs/                           reserved
//	<dir>/fuzzer_stats                     key = value summary
//	<dir>/plot_data                        CSV time series for plotting
package output

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/bigmap/bigmap/internal/corpus"
	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/fuzzer"
)

// Session manages one output directory.
type Session struct {
	dir      string
	plotFile *os.File
	started  time.Time
}

// NewSession creates (or reuses) the output directory layout rooted at dir.
func NewSession(dir string) (*Session, error) {
	for _, sub := range []string{"queue", "crashes", "hangs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("output: create %s: %w", sub, err)
		}
	}
	plot, err := os.OpenFile(filepath.Join(dir, "plot_data"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("output: open plot_data: %w", err)
	}
	st, err := plot.Stat()
	if err == nil && st.Size() == 0 {
		fmt.Fprintln(plot, "# relative_time,execs,paths,edges,crashes_unique,hangs")
	}
	return &Session{dir: dir, plotFile: plot, started: time.Now()}, nil //bigmap:nondeterministic-ok session start stamp feeds AFL-style run_time/plot columns only
}

// Dir returns the session root.
func (s *Session) Dir() string { return s.dir }

// Close releases the session's file handles.
func (s *Session) Close() error {
	if s.plotFile == nil {
		return nil
	}
	err := s.plotFile.Close()
	s.plotFile = nil
	return err
}

// SaveQueue writes every queue entry as an individual file with AFL-style
// names encoding index and provenance.
func (s *Session) SaveQueue(entries []*corpus.Entry) error {
	for i, e := range entries {
		name := fmt.Sprintf("id:%06d,src:%s", i, sanitize(e.FoundBy))
		if e.Favored {
			name += ",+fav"
		}
		path := filepath.Join(s.dir, "queue", name)
		if err := os.WriteFile(path, e.Input, 0o644); err != nil {
			return fmt.Errorf("output: save queue entry %d: %w", i, err)
		}
	}
	return nil
}

// SaveCrashes writes one reproducer input per unique crash bucket, with the
// bucket key in the filename as the signature.
func (s *Session) SaveCrashes(records []*crash.Record) error {
	for i, rec := range records {
		name := fmt.Sprintf("id:%06d,sig:%016x,site:%d,depth:%d",
			i, rec.Key, rec.Site, rec.StackDepth)
		path := filepath.Join(s.dir, "crashes", name)
		if err := os.WriteFile(path, rec.Input, 0o644); err != nil {
			return fmt.Errorf("output: save crash %d: %w", i, err)
		}
	}
	return nil
}

// WriteStats dumps the AFL-style fuzzer_stats summary.
func (s *Session) WriteStats(st fuzzer.Stats, scheme string, mapSize int) error {
	var b strings.Builder
	elapsed := time.Since(s.started).Seconds() //bigmap:nondeterministic-ok run_time_sec is presentation-only wall-clock output
	write := func(k string, v any) { fmt.Fprintf(&b, "%-18s: %v\n", k, v) }
	write("run_time_sec", fmt.Sprintf("%.1f", elapsed))
	write("execs_done", st.Execs)
	if elapsed > 0 {
		write("execs_per_sec", fmt.Sprintf("%.0f", float64(st.Execs)/elapsed))
	}
	write("paths_total", st.Paths)
	write("pending_favs", st.PendingFavored)
	write("edges_found", st.EdgesDiscovered)
	write("used_key", st.UsedKeys)
	write("map_scheme", scheme)
	write("map_size", mapSize)
	write("crashes_total", st.Crashes)
	write("crashes_unique", st.UniqueCrashes)
	write("crashes_unique_afl", st.UniqueCrashesAFL)
	write("hangs_total", st.Hangs)
	return os.WriteFile(filepath.Join(s.dir, "fuzzer_stats"), []byte(b.String()), 0o644)
}

// AppendPlot appends one plot_data sample.
func (s *Session) AppendPlot(st fuzzer.Stats) error {
	_, err := fmt.Fprintf(s.plotFile, "%.1f,%d,%d,%d,%d,%d\n",
		time.Since(s.started).Seconds(), st.Execs, st.Paths, //bigmap:nondeterministic-ok plot_data's relative_time column is wall-clock by design
		st.EdgesDiscovered, st.UniqueCrashes, st.Hangs)
	return err
}

// LoadCorpus reads every file in dir (typically a previous session's queue
// directory) as a seed corpus, sorted by filename for determinism.
func LoadCorpus(dir string) ([][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("output: read corpus dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	corpusOut := make([][]byte, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("output: read %s: %w", name, err)
		}
		corpusOut = append(corpusOut, data)
	}
	return corpusOut, nil
}

// sanitize keeps filenames shell-friendly.
func sanitize(s string) string {
	if s == "" {
		return "unknown"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
