package output

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/bigmap/bigmap/internal/corpus"
	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/fuzzer"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestNewSessionCreatesLayout(t *testing.T) {
	s := newSession(t)
	for _, sub := range []string{"queue", "crashes", "hangs"} {
		if fi, err := os.Stat(filepath.Join(s.Dir(), sub)); err != nil || !fi.IsDir() {
			t.Errorf("missing directory %s: %v", sub, err)
		}
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "plot_data")); err != nil {
		t.Errorf("missing plot_data: %v", err)
	}
}

func TestSaveQueueAndLoadCorpus(t *testing.T) {
	s := newSession(t)
	entries := []*corpus.Entry{
		{Input: []byte("alpha"), FoundBy: "seed", Favored: true},
		{Input: []byte("beta"), FoundBy: "havoc"},
		{Input: []byte("gamma"), FoundBy: "weird/name"},
	}
	if err := s.SaveQueue(entries); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadCorpus(filepath.Join(s.Dir(), "queue"))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 {
		t.Fatalf("loaded %d entries, want 3", len(loaded))
	}
	// Sorted by id, so order is preserved.
	if string(loaded[0]) != "alpha" || string(loaded[1]) != "beta" || string(loaded[2]) != "gamma" {
		t.Errorf("corpus round trip broken: %q", loaded)
	}

	// Filenames carry provenance and favored markers, sanitized.
	files, err := os.ReadDir(filepath.Join(s.Dir(), "queue"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range files {
		names = append(names, f.Name())
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "src:seed") || !strings.Contains(joined, "+fav") {
		t.Errorf("filenames missing metadata: %v", names)
	}
	if strings.Contains(joined, "/") && !strings.Contains(joined, "weird_name") {
		t.Errorf("provenance not sanitized: %v", names)
	}
}

func TestSaveCrashes(t *testing.T) {
	s := newSession(t)
	d := crash.NewDeduper()
	d.Observe(42, []uint32{1, 2}, []byte("boom"))
	d.Observe(43, []uint32{1}, []byte("bang"))
	if err := s.SaveCrashes(d.Records()); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(filepath.Join(s.Dir(), "crashes"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("saved %d crash files, want 2", len(files))
	}
	for _, f := range files {
		if !strings.Contains(f.Name(), "sig:") || !strings.Contains(f.Name(), "site:") {
			t.Errorf("crash filename missing metadata: %s", f.Name())
		}
	}
}

func TestWriteStatsAndPlot(t *testing.T) {
	s := newSession(t)
	st := fuzzer.Stats{
		Execs:           12345,
		Paths:           10,
		EdgesDiscovered: 99,
		UniqueCrashes:   2,
	}
	if err := s.WriteStats(st, "bigmap", 1<<21); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(s.Dir(), "fuzzer_stats"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"execs_done", "12345", "map_scheme", "bigmap", "crashes_unique"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("fuzzer_stats missing %q:\n%s", want, data)
		}
	}

	if err := s.AppendPlot(st); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	plot, err := os.ReadFile(filepath.Join(s.Dir(), "plot_data"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(plot)), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "#") {
		t.Errorf("plot_data malformed:\n%s", plot)
	}
	if !strings.Contains(lines[1], "12345") {
		t.Errorf("plot sample missing execs:\n%s", plot)
	}
}

func TestLoadCorpusMissingDir(t *testing.T) {
	if _, err := LoadCorpus(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestSessionReuseAppendsPlot(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.AppendPlot(fuzzer.Stats{Execs: 1}); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2, err := NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.AppendPlot(fuzzer.Stats{Execs: 2}); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	plot, err := os.ReadFile(filepath.Join(dir, "plot_data"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(plot)), "\n")
	if len(lines) != 3 { // header + two samples
		t.Errorf("plot_data lines = %d, want 3:\n%s", len(lines), plot)
	}
}
