package covreport

import (
	"testing"

	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

func covTarget(t *testing.T) *target.Program {
	t.Helper()
	prog, err := target.Generate(target.GenSpec{
		Name:           "cov",
		Seed:           31,
		NumFuncs:       4,
		BlocksPerFunc:  12,
		InputLen:       32,
		BranchFraction: 0.6,
		CrashSites:     1,
		CrashDepth:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestReportCountsExactEdges(t *testing.T) {
	prog := covTarget(t)
	r := New(prog, 0)
	res := r.Add(make([]byte, 32))
	if res.Status != target.StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	if r.Edges() == 0 || r.Blocks() == 0 {
		t.Fatal("no coverage recorded")
	}
	// Edges can never exceed blocks^2 and must exceed 0; blocks visited on
	// one path are at most path length.
	if r.Edges() > r.Blocks()*r.Blocks() {
		t.Error("impossible edge count")
	}
}

func TestReportMonotone(t *testing.T) {
	prog := covTarget(t)
	r := New(prog, 0)
	src := rng.New(1)
	prev := 0
	for i := 0; i < 30; i++ {
		in := make([]byte, 32)
		src.Bytes(in)
		r.Add(in)
		if r.Edges() < prev {
			t.Fatal("coverage shrank")
		}
		prev = r.Edges()
	}
	total, _, _ := r.Inputs()
	if total != 30 {
		t.Errorf("inputs = %d", total)
	}
}

func TestReportDeterministic(t *testing.T) {
	prog := covTarget(t)
	corpus := prog.SampleSeeds(rng.New(2), 10)
	a := New(prog, 0)
	b := New(prog, 0)
	a.AddCorpus(corpus)
	b.AddCorpus(corpus)
	if a.Edges() != b.Edges() || a.Blocks() != b.Blocks() {
		t.Error("same corpus measured differently")
	}
	la, lb := a.EdgeList(), b.EdgeList()
	if len(la) != len(lb) {
		t.Fatal("edge lists differ")
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("edge lists differ in content")
		}
	}
}

func TestReportEdgeListSortedWithCounts(t *testing.T) {
	prog := covTarget(t)
	r := New(prog, 0)
	r.AddCorpus(prog.SampleSeeds(rng.New(3), 5))
	list := r.EdgeList()
	for i := 1; i < len(list); i++ {
		a, b := list[i-1], list[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatal("edge list not strictly sorted")
		}
	}
	for _, ec := range list {
		if ec.Count == 0 {
			t.Fatal("zero traversal count recorded")
		}
	}
}

func TestReportDiff(t *testing.T) {
	prog := covTarget(t)
	big := New(prog, 0)
	small := New(prog, 0)
	corpus := prog.SampleSeeds(rng.New(4), 20)
	big.AddCorpus(corpus)
	small.AddCorpus(corpus[:1])

	if extra := small.Diff(big); len(extra) != 0 {
		t.Errorf("subset corpus covered %d edges the superset missed", len(extra))
	}
	if extra := big.Diff(small); len(extra) == 0 {
		t.Skip("corpus too uniform to diff; acceptable")
	}
}

func TestReportCountsCrashesAndHangs(t *testing.T) {
	prog := &target.Program{
		Name:     "crashy",
		InputLen: 8,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindCompareByte, Pos: 0, Val: 'X', A: 1, B: 2}},
			{ID: 2, Cost: 1, Node: target.Node{Kind: target.KindCrash}},
			{ID: 3, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
		}}},
	}
	r := New(prog, 0)
	r.Add([]byte{'X'})
	r.Add([]byte{'Y'})
	total, crashes, hangs := r.Inputs()
	if total != 2 || crashes != 1 || hangs != 0 {
		t.Errorf("inputs=%d crashes=%d hangs=%d", total, crashes, hangs)
	}
}

// TestExactCoverageIsCollisionFree pins the methodological point: two edges
// that collide in a 64kB hashed map remain distinct in the exact report.
func TestExactCoverageIsCollisionFree(t *testing.T) {
	// Block IDs chosen so (a>>1)^b == (c>>1)^d under a 16-bit mask.
	prog := &target.Program{
		Name:     "collide",
		InputLen: 8,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 0x10000, Cost: 1, Node: target.Node{Kind: target.KindCompareByte, Pos: 0, Val: 1, A: 1, B: 2}},
			{ID: 0x20000, Cost: 1, Node: target.Node{Kind: target.KindJump, A: 3}},
			{ID: 0x30000, Cost: 1, Node: target.Node{Kind: target.KindJump, A: 3}},
			{ID: 0x40000, Cost: 1, Node: target.Node{Kind: target.KindReturn}},
		}}},
	}
	r := New(prog, 0)
	r.Add([]byte{1}) // path via block 0x20000
	r.Add([]byte{0}) // path via block 0x30000
	// Exact coverage distinguishes the two middle blocks even though all
	// four IDs mask to 0 in a 64k map (they collide completely there).
	if r.Blocks() != 4 {
		t.Errorf("blocks = %d, want 4 distinct", r.Blocks())
	}
	if r.Edges() != 4 {
		t.Errorf("edges = %d, want 4 distinct (2 branch + 2 join)", r.Edges())
	}
}
