// Package covreport implements the paper's bias-free coverage methodology
// (§V-A3): "we collected the output corpus of the fuzzers and subjected them
// to a bias-free independent coverage build". A fuzzer's own edge counts are
// confounded by its map size (collisions merge edges; bucketing hides
// counts), so cross-configuration coverage comparisons must re-measure the
// corpus with exact, collision-free edge identities.
//
// The coverage build here replays inputs through the target interpreter and
// records exact (previous block, current block) pairs — no hashing, no map,
// no buckets — exactly what a SanitizerCoverage build provides for real
// binaries.
package covreport

import (
	"sort"

	"github.com/bigmap/bigmap/internal/target"
)

// Edge is an exact control-flow transition between two block IDs.
type Edge struct {
	From uint32
	To   uint32
}

// Report accumulates exact coverage over a corpus. The zero value is not
// usable; construct with New.
type Report struct {
	interp *target.Interp
	budget uint64
	edges  map[Edge]uint64 // edge -> times traversed across the corpus
	blocks map[uint32]bool
	inputs int
	crash  int
	hang   int
}

// New creates a coverage report builder for prog. budget is the
// per-execution cycle budget (0 = executor default semantics: 1<<22).
func New(prog *target.Program, budget uint64) *Report {
	if budget == 0 {
		budget = 1 << 22
	}
	return &Report{
		interp: target.NewInterp(prog),
		budget: budget,
		edges:  make(map[Edge]uint64),
		blocks: make(map[uint32]bool),
	}
}

// edgeTracer records exact transitions.
type edgeTracer struct {
	r    *Report
	prev uint32
	has  bool
}

var _ target.Tracer = (*edgeTracer)(nil)

func (t *edgeTracer) Visit(block uint32) {
	t.r.blocks[block] = true
	if t.has {
		t.r.edges[Edge{From: t.prev, To: block}]++
	}
	t.prev = block
	t.has = true
}

func (t *edgeTracer) EnterCall(uint32) {}
func (t *edgeTracer) LeaveCall()       {}

// Add replays one input and folds its exact coverage into the report,
// returning the execution result.
func (r *Report) Add(input []byte) target.Result {
	tr := edgeTracer{r: r}
	res := r.interp.Run(input, &tr, r.budget)
	r.inputs++
	switch res.Status {
	case target.StatusCrash:
		r.crash++
	case target.StatusHang:
		r.hang++
	}
	return res
}

// AddCorpus replays a whole corpus.
func (r *Report) AddCorpus(corpus [][]byte) {
	for _, in := range corpus {
		r.Add(in)
	}
}

// Edges returns the number of distinct exact edges covered.
func (r *Report) Edges() int { return len(r.edges) }

// Blocks returns the number of distinct basic blocks covered.
func (r *Report) Blocks() int { return len(r.blocks) }

// Inputs returns how many inputs were replayed (and how many crashed or
// hung).
func (r *Report) Inputs() (total, crashes, hangs int) {
	return r.inputs, r.crash, r.hang
}

// EdgeList returns the covered edges sorted by (From, To) with their
// traversal counts, for reporting and tests.
func (r *Report) EdgeList() []EdgeCount {
	out := make([]EdgeCount, 0, len(r.edges))
	for e, n := range r.edges {
		out = append(out, EdgeCount{Edge: e, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// EdgeCount pairs an exact edge with its corpus-wide traversal count.
type EdgeCount struct {
	Edge
	Count uint64
}

// Diff reports edges covered by r but not by other — which configuration
// reached what the other missed.
func (r *Report) Diff(other *Report) []Edge {
	var missing []Edge
	for e := range r.edges {
		if _, ok := other.edges[e]; !ok {
			missing = append(missing, e)
		}
	}
	sort.Slice(missing, func(i, j int) bool {
		if missing[i].From != missing[j].From {
			return missing[i].From < missing[j].From
		}
		return missing[i].To < missing[j].To
	})
	return missing
}
