// Package corpus maintains the fuzzer's seed pool: the queue of interesting
// test cases, their calibration statistics, and AFL's top-rated/favored
// culling that focuses mutation effort on a minimal covering set of fast,
// small entries.
package corpus

import (
	"errors"
	"fmt"
	"sort"
)

// Entry is one queue item. Fields mirror AFL's queue_entry.
type Entry struct {
	// Input is the test case bytes. Entries own their input; callers must
	// not mutate it after Add.
	Input []byte
	// Cycles is the calibrated average execution cost (the exec_us
	// analogue in our virtual-time substrate).
	Cycles uint64
	// EdgeCount is the number of coverage slots the entry touches
	// (AFL's bitmap_size).
	EdgeCount int
	// Touched lists the stable identities of the coverage slots the entry
	// touches, used for top-rated bookkeeping. Sorted ascending.
	Touched []uint32
	// PathHash is the classified-trace digest, for path comparison.
	PathHash uint64
	// Depth is the mutation genealogy depth (seeds are 0).
	Depth int
	// FoundBy records provenance: "seed", "det", "havoc", "splice",
	// "sync".
	FoundBy string
	// Favored marks the entry as part of the minimal covering set; the
	// scheduler strongly prefers favored entries.
	Favored bool
	// WasFuzzed is set after the entry has been through a full fuzz round.
	WasFuzzed bool
	// WasTrimmed is set after the trim stage has processed the entry.
	WasTrimmed bool
	// FuzzLevel counts completed fuzz rounds (AFLFast's s(i)).
	FuzzLevel int
}

// favFactor is AFL's fav_factor: smaller is better (fast and small).
func favFactor(e *Entry) uint64 {
	return e.Cycles * uint64(len(e.Input))
}

// Queue is the seed pool. Not safe for concurrent use.
type Queue struct {
	entries  []*Entry
	topRated map[uint32]*Entry
	dirty    bool
}

// NewQueue creates an empty queue.
func NewQueue() *Queue {
	return &Queue{topRated: make(map[uint32]*Entry)}
}

// Len returns the number of entries.
func (q *Queue) Len() int { return len(q.entries) }

// Get returns entry i in insertion order.
func (q *Queue) Get(i int) *Entry { return q.entries[i] }

// Add appends an entry and updates the top-rated table: for every coverage
// slot the entry touches, it becomes the slot's champion if it has a better
// (smaller) fav factor than the current one — AFL's update_bitmap_score.
func (q *Queue) Add(e *Entry) {
	q.entries = append(q.entries, e) //bigmap:alloc-ok discovery-only: runs once per new corpus entry, not per execution
	f := favFactor(e)
	for _, slot := range e.Touched {
		cur, ok := q.topRated[slot]
		if !ok || f < favFactor(cur) || (f == favFactor(cur) && e.EdgeCount > cur.EdgeCount) {
			q.topRated[slot] = e
		}
	}
	q.dirty = true
}

// Cull recomputes the favored set with AFL's cull_queue algorithm: walk the
// coverage slots in ascending order; for each slot not yet covered, favor
// its top-rated champion and mark everything the champion touches as
// covered. Cull is a no-op when nothing changed since the last call.
func (q *Queue) Cull() {
	if !q.dirty {
		return
	}
	q.dirty = false
	for _, e := range q.entries {
		e.Favored = false
	}
	slots := make([]uint32, 0, len(q.topRated))
	for slot := range q.topRated {
		slots = append(slots, slot)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })

	covered := make(map[uint32]bool, len(slots))
	for _, slot := range slots {
		if covered[slot] {
			continue
		}
		champ := q.topRated[slot]
		champ.Favored = true
		for _, s := range champ.Touched {
			covered[s] = true
		}
	}
}

// FavoredCount returns the number of favored entries (after Cull).
func (q *Queue) FavoredCount() int {
	n := 0
	for _, e := range q.entries {
		if e.Favored {
			n++
		}
	}
	return n
}

// PendingFavored returns the number of favored entries not yet fuzzed, which
// drives AFL's skip probabilities.
func (q *Queue) PendingFavored() int {
	n := 0
	for _, e := range q.entries {
		if e.Favored && !e.WasFuzzed {
			n++
		}
	}
	return n
}

// Entries returns a copy of the entry list (the entries themselves are
// shared).
func (q *Queue) Entries() []*Entry {
	out := make([]*Entry, len(q.entries))
	copy(out, q.entries)
	return out
}

// AddRestored appends an entry without top-rated accounting, for checkpoint
// replay. The top-rated table reflects the exact interleaving of Add and
// trim calls in the original campaign (trim changes fav factors after Add),
// so a resume restores it verbatim via RestoreTopRated instead of replaying
// Add.
func (q *Queue) AddRestored(e *Entry) {
	q.entries = append(q.entries, e)
	q.dirty = true
}

// TopRated returns the slot-champion table as (slot, entry index) pairs with
// slots ascending — the queue's entire derived state beyond the entry list,
// captured for checkpointing.
func (q *Queue) TopRated() (slots []uint32, entryIdx []int) {
	index := make(map[*Entry]int, len(q.entries))
	for i, e := range q.entries {
		index[e] = i
	}
	slots = make([]uint32, 0, len(q.topRated))
	for slot := range q.topRated {
		slots = append(slots, slot)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	entryIdx = make([]int, len(slots))
	for i, slot := range slots {
		entryIdx[i] = index[q.topRated[slot]]
	}
	return slots, entryIdx
}

// RestoreTopRated installs a checkpointed slot-champion table. Entries are
// referenced by index into the current entry list; out-of-range indexes are
// rejected.
func (q *Queue) RestoreTopRated(slots []uint32, entryIdx []int) error {
	if len(slots) != len(entryIdx) {
		return errors.New("corpus: top-rated slots and entries differ in length")
	}
	table := make(map[uint32]*Entry, len(slots))
	for i, slot := range slots {
		if entryIdx[i] < 0 || entryIdx[i] >= len(q.entries) {
			return fmt.Errorf("corpus: top-rated entry index %d out of range (%d entries)",
				entryIdx[i], len(q.entries))
		}
		table[slot] = q.entries[entryIdx[i]]
	}
	q.topRated = table
	q.dirty = true
	return nil
}
