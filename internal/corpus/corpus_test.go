package corpus

import "testing"

func entry(input string, cycles uint64, touched ...uint32) *Entry {
	return &Entry{
		Input:     []byte(input),
		Cycles:    cycles,
		EdgeCount: len(touched),
		Touched:   touched,
	}
}

func TestQueueAddAndLen(t *testing.T) {
	q := NewQueue()
	if q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	e := entry("aaaa", 10, 1, 2)
	q.Add(e)
	if q.Len() != 1 || q.Get(0) != e {
		t.Fatal("Add/Get broken")
	}
}

func TestCullPicksChampions(t *testing.T) {
	q := NewQueue()
	fast := entry("aa", 1, 1, 2) // fav factor 2
	slow := entry("aaaaaaaa", 100, 1, 2, 3)
	q.Add(slow)
	q.Add(fast)
	q.Cull()

	if !fast.Favored {
		t.Error("fast champion not favored")
	}
	// slow still owns slot 3, so it stays favored too.
	if !slow.Favored {
		t.Error("slow entry owning unique slot 3 not favored")
	}
}

func TestCullDropsDominatedEntries(t *testing.T) {
	q := NewQueue()
	big := entry("aa", 1, 1, 2, 3)
	dominated := entry("bbbb", 50, 2, 3)
	q.Add(big)
	q.Add(dominated)
	q.Cull()
	if !big.Favored {
		t.Error("covering entry not favored")
	}
	if dominated.Favored {
		t.Error("dominated entry favored")
	}
	if got := q.FavoredCount(); got != 1 {
		t.Errorf("FavoredCount = %d, want 1", got)
	}
}

func TestCullIdempotentAndLazy(t *testing.T) {
	q := NewQueue()
	q.Add(entry("aa", 1, 1))
	q.Cull()
	first := q.FavoredCount()
	q.Cull() // no changes since; must be a no-op
	if q.FavoredCount() != first {
		t.Error("repeat cull changed favored set")
	}
}

func TestTopRatedTieBreakOnEdgeCount(t *testing.T) {
	q := NewQueue()
	a := entry("aa", 5, 1)       // factor 10, 1 edge
	b := entry("aa", 5, 1, 2, 3) // factor 10, 3 edges
	q.Add(a)
	q.Add(b)
	q.Cull()
	if !b.Favored {
		t.Error("tie should go to the entry with more coverage")
	}
}

func TestPendingFavored(t *testing.T) {
	q := NewQueue()
	a := entry("aa", 1, 1)
	b := entry("bb", 1, 2)
	q.Add(a)
	q.Add(b)
	q.Cull()
	if got := q.PendingFavored(); got != 2 {
		t.Fatalf("PendingFavored = %d, want 2", got)
	}
	a.WasFuzzed = true
	if got := q.PendingFavored(); got != 1 {
		t.Fatalf("PendingFavored = %d, want 1", got)
	}
}

func TestEntriesReturnsCopy(t *testing.T) {
	q := NewQueue()
	q.Add(entry("aa", 1, 1))
	list := q.Entries()
	list[0] = nil
	if q.Get(0) == nil {
		t.Error("Entries exposed internal slice")
	}
}

func TestNewChampionReplacesSlower(t *testing.T) {
	q := NewQueue()
	slow := entry("cccccccc", 100, 7)
	q.Add(slow)
	q.Cull()
	if !slow.Favored {
		t.Fatal("sole entry must be favored")
	}
	fast := entry("c", 1, 7)
	q.Add(fast)
	q.Cull()
	if slow.Favored || !fast.Favored {
		t.Error("faster champion did not take over slot 7")
	}
}
