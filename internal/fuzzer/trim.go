package fuzzer

import (
	"github.com/bigmap/bigmap/internal/corpus"
	"github.com/bigmap/bigmap/internal/target"
)

// maxTrimExecs bounds the executions one trim pass may spend, so
// pathological entries cannot starve the mutation stages.
const maxTrimExecs = 1024

// trim shrinks a queue entry with AFL's trim_case algorithm: repeatedly try
// to delete power-of-two-sized chunks and keep any deletion that leaves the
// execution path (the classified-trace digest) unchanged. Smaller inputs
// mutate better — a change is more likely to hit control data than redundant
// payload (§II-A1) — and they lower the entry's fav factor.
//
// Trim runs never touch the virgin maps: they only need the digest, so they
// go through runForHash.
func (f *Fuzzer) trim(e *corpus.Entry) {
	input := e.Input
	if len(input) < 8 {
		return
	}
	origHash := e.PathHash
	budget := f.execs + maxTrimExecs

	lenP2 := nextPow2(len(input))
	removeLen := maxi(lenP2/16, 4)
	trimmed := false

	for removeLen >= maxi(lenP2/1024, 4) && f.execs < budget {
		pos := 0
		for pos < len(input) && f.execs < budget {
			avail := removeLen
			if pos+avail > len(input) {
				avail = len(input) - pos
			}
			candidate := make([]byte, 0, len(input)-avail)
			candidate = append(candidate, input[:pos]...)
			candidate = append(candidate, input[pos+avail:]...)
			if len(candidate) == 0 {
				pos += removeLen
				continue
			}
			res, hash := f.runForHash(candidate)
			if res.Status == target.StatusOK && hash == origHash {
				input = candidate
				trimmed = true
				// Keep pos: the next chunk slid into place.
			} else {
				pos += removeLen
			}
		}
		removeLen >>= 1
	}

	if trimmed {
		e.Input = input
		// Refresh the entry's cost statistics from a final clean run.
		res, _ := f.runForHash(input)
		e.Cycles = res.Cycles
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
