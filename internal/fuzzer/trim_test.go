package fuzzer

import (
	"testing"

	"github.com/bigmap/bigmap/internal/corpus"
	"github.com/bigmap/bigmap/internal/target"
)

// trimTarget builds a program that reads only the first 8 input bytes, so
// any longer seed carries pure padding the trim stage should remove.
func trimTarget(t *testing.T) *target.Program {
	t.Helper()
	blocks := make([]target.Block, 0, 10)
	for i := 0; i < 8; i++ {
		blocks = append(blocks, target.Block{
			ID:   uint32(100 + i),
			Cost: 1,
			Node: target.Node{
				Kind: target.KindCompareByte,
				Pos:  i,
				Val:  uint64('A' + i),
				A:    i + 1, // matched: next check
				B:    8,     // mismatched: bail to Return
			},
		})
	}
	blocks = append(blocks, target.Block{ID: 200, Cost: 1, Node: target.Node{Kind: target.KindReturn}})
	return &target.Program{Name: "trim", InputLen: 8, Funcs: []target.Func{{Blocks: blocks}}}
}

func TestTrimRemovesPadding(t *testing.T) {
	prog := trimTarget(t)
	f, err := New(prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A seed with 8 meaningful bytes followed by 120 bytes of padding.
	seed := make([]byte, 128)
	copy(seed, "ABCDEFGH")
	if err := f.AddSeed(seed); err != nil {
		t.Fatal(err)
	}
	e := f.Queue().Get(0)
	if len(e.Input) != 128 {
		t.Fatalf("seed length %d before trim", len(e.Input))
	}
	origHash := e.PathHash

	f.trim(e)

	if len(e.Input) >= 128 {
		t.Errorf("trim did not shrink the input (len %d)", len(e.Input))
	}
	// The trimmed input must still execute the same path.
	_, hash := f.runForHash(e.Input)
	if hash != origHash {
		t.Error("trim changed the execution path")
	}
	// The meaningful prefix must survive.
	if string(e.Input[:8]) != "ABCDEFGH" {
		t.Errorf("trim corrupted the meaningful prefix: %q", e.Input[:8])
	}
}

func TestTrimSkipsTinyInputs(t *testing.T) {
	prog := trimTarget(t)
	f, err := New(prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := &corpus.Entry{Input: []byte("abc")}
	before := f.Execs()
	f.trim(e)
	if f.Execs() != before {
		t.Error("trim spent executions on a tiny input")
	}
	if string(e.Input) != "abc" {
		t.Error("trim modified a tiny input")
	}
}

func TestTrimRespectsBudget(t *testing.T) {
	prog := trimTarget(t)
	f, err := New(prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, 4096)
	copy(seed, "ABCDEFGH")
	if err := f.AddSeed(seed); err != nil {
		t.Fatal(err)
	}
	e := f.Queue().Get(0)
	before := f.Execs()
	f.trim(e)
	spent := f.Execs() - before
	if spent > maxTrimExecs+2 {
		t.Errorf("trim spent %d execs, budget is %d", spent, maxTrimExecs)
	}
}

func TestStepTrimsNewEntriesOnce(t *testing.T) {
	prog := trimTarget(t)
	f, err := New(prog, Config{Seed: 2, HavocRounds: 4, SpliceRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, 64)
	copy(seed, "ABCDEFGH")
	if err := f.AddSeed(seed); err != nil {
		t.Fatal(err)
	}
	if err := f.Step(); err != nil {
		t.Fatal(err)
	}
	e := f.Queue().Get(0)
	if !e.WasTrimmed {
		t.Error("Step did not trim the entry")
	}
	if len(e.Input) >= 64 {
		t.Errorf("entry not shrunk by Step (len %d)", len(e.Input))
	}
}

func TestDisableTrim(t *testing.T) {
	prog := trimTarget(t)
	f, err := New(prog, Config{Seed: 2, DisableTrim: true, HavocRounds: 4, SpliceRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, 64)
	copy(seed, "ABCDEFGH")
	if err := f.AddSeed(seed); err != nil {
		t.Fatal(err)
	}
	if err := f.Step(); err != nil {
		t.Fatal(err)
	}
	e := f.Queue().Get(0)
	if e.WasTrimmed || len(e.Input) != 64 {
		t.Error("trim ran despite DisableTrim")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 64: 64, 65: 128, 1000: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
