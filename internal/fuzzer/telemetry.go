package fuzzer

import (
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// telemetryHooks holds the instance's pre-resolved metric handles. Handles
// are looked up once at construction so the fuzzing loop records through
// plain pointers — lock-free, allocation-free atomic updates. The zero value
// (all nil, from a nil registry) is the disabled state: every record site
// reduces to a nil check and no clock is ever read.
//
// Parallel campaign instances share one registry, so these metrics aggregate
// across instances; per-instance breakdowns live in package parallel.
type telemetryHooks struct {
	execs      *telemetry.Counter
	crashes    *telemetry.Counter
	hangs      *telemetry.Counter
	pathsFound *telemetry.Counter
	imports    *telemetry.Counter
	calibExecs *telemetry.Counter

	filterSkips  *telemetry.Counter
	filterReruns *telemetry.Counter

	queuePaths *telemetry.Gauge
	edges      *telemetry.Gauge
	skipRatio  *telemetry.Gauge

	execNs         *telemetry.Histogram
	stageDet       *telemetry.Histogram
	stageHavoc     *telemetry.Histogram
	stageSplice    *telemetry.Histogram
	stageCmplog    *telemetry.Histogram
	stageTrim      *telemetry.Histogram
	stageCalibrate *telemetry.Histogram
}

// newTelemetryHooks resolves the fuzzer's metric handles and instruments the
// coverage map's per-operation timings (map_<scheme>_*_ns). With a nil
// registry it returns the zero hooks and leaves the map bare.
func newTelemetryHooks(r *telemetry.Registry, cov core.Map) telemetryHooks {
	if r == nil {
		return telemetryHooks{}
	}
	if ins, ok := cov.(core.Instrumented); ok {
		ins.Instrument(telemetry.NewMapOps(r, cov.Scheme()))
	}
	return telemetryHooks{
		execs:      r.Counter("fuzzer_execs_total"),
		crashes:    r.Counter("fuzzer_crashes_total"),
		hangs:      r.Counter("fuzzer_hangs_total"),
		pathsFound: r.Counter("fuzzer_paths_found_total"),
		imports:    r.Counter("fuzzer_imports_total"),
		calibExecs: r.Counter("fuzzer_calib_execs_total"),

		filterSkips:  r.Counter("fuzzer_filter_skips_total"),
		filterReruns: r.Counter("fuzzer_filter_reruns_total"),

		queuePaths: r.Gauge("fuzzer_queue_paths"),
		edges:      r.Gauge("fuzzer_edges_discovered"),
		skipRatio:  r.Gauge("fuzzer_filter_skip_permille"),

		execNs:         r.Histogram("fuzzer_exec_ns"),
		stageDet:       r.Histogram("fuzzer_stage_det_ns"),
		stageHavoc:     r.Histogram("fuzzer_stage_havoc_ns"),
		stageSplice:    r.Histogram("fuzzer_stage_splice_ns"),
		stageCmplog:    r.Histogram("fuzzer_stage_cmplog_ns"),
		stageTrim:      r.Histogram("fuzzer_stage_trim_ns"),
		stageCalibrate: r.Histogram("fuzzer_stage_calibrate_ns"),
	}
}

// noteEnqueue refreshes the cheap liveness gauges after a queue add. Both
// reads are O(1) (queue length; the virgin map's running discovered count).
func (f *Fuzzer) noteEnqueue() {
	f.tel.pathsFound.Inc()
	f.tel.queuePaths.Set(int64(f.queue.Len()))
	f.tel.edges.Set(int64(f.virginAll.CountDiscovered()))
}

// noteFilterSkip records a selective-tracing skip: the MaybeNew prefilter
// proved the execution could not change the virgin map, so the full
// classify-and-compare traversal never ran.
func (f *Fuzzer) noteFilterSkip() {
	f.filterSkips++
	f.tel.filterSkips.Inc()
	f.noteSkipRatio()
}

// noteFilterFull records a filter miss: the prefilter reported possibly-new
// coverage and the full traversal re-ran over the already-recorded trace.
func (f *Fuzzer) noteFilterFull() {
	f.filterFulls++
	f.tel.filterReruns.Inc()
	f.noteSkipRatio()
}

// noteSkipRatio refreshes the skip-ratio gauge (permille of filtered
// executions the prefilter skipped). Counters are per-instance but the gauge
// is shared in parallel campaigns; last writer wins, which is fine for a
// liveness indicator.
func (f *Fuzzer) noteSkipRatio() {
	if f.tel.skipRatio == nil {
		return
	}
	total := f.filterSkips + f.filterFulls
	f.tel.skipRatio.Set(int64(f.filterSkips * 1000 / total))
}
