package fuzzer

import (
	"errors"
	"testing"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

// fuzzTarget generates a small branchy program with reachable crash sites.
func fuzzTarget(t *testing.T) *target.Program {
	t.Helper()
	prog, err := target.Generate(target.GenSpec{
		Name:           "fuzzme",
		Seed:           7,
		NumFuncs:       6,
		BlocksPerFunc:  16,
		InputLen:       48,
		BranchFraction: 0.6,
		Switches:       2,
		SwitchFanout:   4,
		Loops:          2,
		LoopMax:        8,
		CrashSites:     4,
		CrashDepth:     1, // shallow: findable within a small exec budget
		HangSites:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func seedCorpus(t *testing.T, f *Fuzzer, prog *target.Program, n int) {
	t.Helper()
	src := rng.New(1000)
	added := 0
	for _, s := range prog.SampleSeeds(src, n*2) {
		if err := f.AddSeed(s); err == nil {
			added++
		}
		if added == n {
			return
		}
	}
	if added == 0 {
		t.Fatal("no seeds accepted")
	}
}

func TestNewAppliesDefaults(t *testing.T) {
	f, err := New(fuzzTarget(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Map().Scheme() != "afl" || f.Map().Size() != core.MapSize64K {
		t.Errorf("defaults wrong: scheme=%s size=%d", f.Map().Scheme(), f.Map().Size())
	}
}

func TestNewRejectsUnknownScheme(t *testing.T) {
	if _, err := New(fuzzTarget(t), Config{Scheme: "bogus"}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunWithoutSeeds(t *testing.T) {
	f, err := New(fuzzTarget(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunExecs(10); !errors.Is(err, ErrNoSeeds) {
		t.Errorf("err = %v, want ErrNoSeeds", err)
	}
}

func TestAddSeedEnqueues(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	if f.Queue().Len() < 3 {
		t.Errorf("queue = %d entries, want >= 3", f.Queue().Len())
	}
	st := f.Stats()
	if st.EdgesDiscovered == 0 {
		t.Error("seeds discovered no edges")
	}
}

func TestAddSeedRejectsCrashingInput(t *testing.T) {
	// A program whose every run crashes immediately.
	prog := &target.Program{
		Name:     "boom",
		InputLen: 8,
		Funcs: []target.Func{{Blocks: []target.Block{
			{ID: 1, Cost: 1, Node: target.Node{Kind: target.KindCrash}},
		}}},
	}
	f, err := New(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddSeed([]byte{1, 2, 3}); err == nil {
		t.Error("crashing seed accepted")
	}
	if f.Queue().Len() != 0 {
		t.Error("crashing seed enqueued")
	}
}

func TestFuzzingDiscoversNewPaths(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 2, Scheme: SchemeBigMap})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	before := f.Stats()
	if err := f.RunExecs(20000); err != nil {
		t.Fatal(err)
	}
	after := f.Stats()
	if after.Execs < 20000 {
		t.Errorf("Execs = %d, want >= 20000", after.Execs)
	}
	if after.Paths <= before.Paths {
		t.Errorf("paths %d -> %d: fuzzing found nothing new", before.Paths, after.Paths)
	}
	if after.EdgesDiscovered <= before.EdgesDiscovered {
		t.Errorf("edges %d -> %d: coverage did not grow", before.EdgesDiscovered, after.EdgesDiscovered)
	}
}

func TestFuzzingFindsShallowCrashes(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 3, Scheme: SchemeBigMap})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	if err := f.RunExecs(60000); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Crashes == 0 {
		t.Fatal("no crashing executions in 60k execs against depth-1 guards")
	}
	if st.UniqueCrashes == 0 {
		t.Error("crashes observed but no unique buckets")
	}
	if st.UniqueCrashes > int(st.Crashes) {
		t.Error("more unique buckets than crashes")
	}
}

// TestSchemesProduceEquivalentCampaigns is the end-to-end counterpart of
// the map equivalence property: with the same seed, mutation stream and
// target, an AFL-scheme campaign and a BigMap campaign see identical
// coverage verdicts, so they must converge to near-identical queue growth
// and coverage. The campaigns are not bit-identical: queue culling iterates
// coverage slots in order, and slot identities differ between schemes (raw
// keys vs dense assignment order), which can shuffle which champion is
// favored first — a divergence the real AFL-vs-BigMap pair has too.
func TestSchemesProduceEquivalentCampaigns(t *testing.T) {
	prog := fuzzTarget(t)
	run := func(scheme Scheme) Stats {
		f, err := New(prog, Config{Seed: 4, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		seedCorpus(t, f, prog, 3)
		if err := f.RunExecs(15000); err != nil {
			t.Fatal(err)
		}
		return f.Stats()
	}
	a := run(SchemeAFL)
	b := run(SchemeBigMap)

	within := func(x, y, pct int) bool {
		d := x - y
		if d < 0 {
			d = -d
		}
		lim := (x + y) * pct / 200
		if lim < 2 {
			lim = 2
		}
		return d <= lim
	}
	if !within(a.Paths, b.Paths, 15) {
		t.Errorf("paths diverged: afl=%d bigmap=%d", a.Paths, b.Paths)
	}
	if !within(a.EdgesDiscovered, b.EdgesDiscovered, 10) {
		t.Errorf("edges diverged: afl=%d bigmap=%d", a.EdgesDiscovered, b.EdgesDiscovered)
	}
}

func TestBigMapUsedKeysStaysSmall(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 5, Scheme: SchemeBigMap, MapSize: core.MapSize2M})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	if err := f.RunExecs(5000); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.UsedKeys == 0 {
		t.Fatal("used_key never grew")
	}
	if st.UsedKeys > prog.StaticEdges()*2 {
		t.Errorf("used_key %d far exceeds static edges %d", st.UsedKeys, prog.StaticEdges())
	}
	if st.UsedKeys >= core.MapSize2M/100 {
		t.Errorf("used_key %d is not a small fraction of the 2MB map", st.UsedKeys)
	}
}

func TestTimingsAccumulateMerged(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 6, TrackTimings: true})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 2)
	if err := f.RunExecs(2000); err != nil {
		t.Fatal(err)
	}
	tm := f.Stats().Timings
	if tm.Execution == 0 || tm.Reset == 0 || tm.ClassifyCompare == 0 {
		t.Errorf("timings missing: %+v", tm)
	}
	if tm.Classify != 0 || tm.Compare != 0 {
		t.Errorf("split timings nonzero in merged mode: %+v", tm)
	}
}

func TestTimingsAccumulateSplit(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 6, TrackTimings: true, SplitClassifyCompare: true})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 2)
	if err := f.RunExecs(2000); err != nil {
		t.Fatal(err)
	}
	tm := f.Stats().Timings
	if tm.Classify == 0 || tm.Compare == 0 {
		t.Errorf("split timings missing: %+v", tm)
	}
	if tm.ClassifyCompare != 0 {
		t.Errorf("merged timing nonzero in split mode: %+v", tm)
	}
	if tm.Total() != tm.Execution+tm.MapOps() {
		t.Error("Total != Execution + MapOps")
	}
}

func TestImportInput(t *testing.T) {
	prog := fuzzTarget(t)
	a, err := New(prog, Config{Seed: 7, Scheme: SchemeBigMap})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(prog, Config{Seed: 8, Scheme: SchemeBigMap})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, a, prog, 3)
	if err := a.RunExecs(10000); err != nil {
		t.Fatal(err)
	}

	imported := 0
	for _, e := range a.Queue().Entries() {
		if b.ImportInput(e.Input) {
			imported++
		}
	}
	if imported == 0 {
		t.Error("no inputs imported into a fresh instance")
	}
	if b.Queue().Len() != imported {
		t.Errorf("queue %d != imported %d", b.Queue().Len(), imported)
	}
	// Importing the same inputs again must add nothing.
	again := 0
	for _, e := range a.Queue().Entries() {
		if b.ImportInput(e.Input) {
			again++
		}
	}
	if again != 0 {
		t.Errorf("%d inputs re-imported", again)
	}
}

func TestDeterministicStageRuns(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 9, RunDeterministic: true, HavocRounds: 1, SpliceRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 1)
	if err := f.Step(); err != nil {
		t.Fatal(err)
	}
	// Deterministic stages on a 48-byte input produce thousands of execs,
	// far beyond the 1 havoc + 1 splice configured.
	if f.Execs() < 1000 {
		t.Errorf("Execs = %d; deterministic stage apparently skipped", f.Execs())
	}
}

func TestNGramMetricCampaign(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{
		Seed:   10,
		Scheme: SchemeBigMap,
		Metric: func(size int) (core.Metric, error) { return core.NewNGramMetric(size, 3) },
	})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	if err := f.RunExecs(5000); err != nil {
		t.Fatal(err)
	}
	if f.Stats().EdgesDiscovered == 0 {
		t.Error("ngram campaign discovered nothing")
	}
}

// TestCmpLogSolvesMagicRoadblocks pins the input-to-state stage: a target
// gated behind 4-byte magic values is practically unsolvable by havoc within
// a small budget, but trivial with cmplog enabled.
func TestCmpLogSolvesMagicRoadblocks(t *testing.T) {
	prog, err := target.Generate(target.GenSpec{
		Name:           "roadblock",
		Seed:           91,
		NumFuncs:       3,
		BlocksPerFunc:  10,
		InputLen:       64,
		BranchFraction: 0.3,
		MagicCompares:  6,
		MagicWidth:     4,
		BonusBlocks:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	edges := func(cmpLog bool) int {
		f, err := New(prog, Config{Seed: 5, Scheme: SchemeBigMap, EnableCmpLog: cmpLog})
		if err != nil {
			t.Fatal(err)
		}
		seedCorpus(t, f, prog, 3)
		if err := f.RunExecs(8000); err != nil {
			t.Fatal(err)
		}
		return f.Stats().EdgesDiscovered
	}
	plain := edges(false)
	solved := edges(true)
	if solved <= plain {
		t.Errorf("cmplog did not help: %d edges with vs %d without", solved, plain)
	}
}
