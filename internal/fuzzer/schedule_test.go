package fuzzer

import "testing"

func TestValidateSchedule(t *testing.T) {
	for _, s := range []PowerSchedule{"", ScheduleExploit, ScheduleFast, ScheduleExplore, ScheduleCOE, ScheduleLin, ScheduleQuad} {
		if err := validateSchedule(s); err != nil {
			t.Errorf("schedule %q rejected: %v", s, err)
		}
	}
	if err := validateSchedule("bogus"); err == nil {
		t.Error("bogus schedule accepted")
	}
}

func TestScheduleFactorExploitIsNeutral(t *testing.T) {
	if got := scheduleFactor(ScheduleExploit, 5, 100, 10); got != 1 {
		t.Errorf("exploit factor = %d, want 1", got)
	}
	if got := scheduleFactor("", 5, 100, 10); got != 1 {
		t.Errorf("default factor = %d, want 1", got)
	}
}

func TestScheduleFastRewardsRarePaths(t *testing.T) {
	rare := scheduleFactor(ScheduleFast, 4, 1, 100)
	common := scheduleFactor(ScheduleFast, 4, 1000, 100)
	if rare <= common {
		t.Errorf("fast: rare path factor %d <= common path factor %d", rare, common)
	}
	if rare > maxEnergyFactor {
		t.Errorf("factor %d exceeds cap", rare)
	}
}

func TestScheduleFastGrowsWithFuzzLevel(t *testing.T) {
	early := scheduleFactor(ScheduleFast, 0, 8, 10)
	late := scheduleFactor(ScheduleFast, 8, 8, 10)
	if late <= early {
		t.Errorf("fast: level-8 factor %d <= level-0 factor %d", late, early)
	}
}

func TestScheduleCOESkipsHotPaths(t *testing.T) {
	if got := scheduleFactor(ScheduleCOE, 3, 200, 50); got != 0 {
		t.Errorf("coe on over-represented path = %d, want 0 (skip)", got)
	}
	if got := scheduleFactor(ScheduleCOE, 3, 10, 50); got == 0 {
		t.Error("coe on rare path skipped")
	}
}

func TestScheduleLinQuadOrdering(t *testing.T) {
	lin := scheduleFactor(ScheduleLin, 10, 4, 10)
	quad := scheduleFactor(ScheduleQuad, 10, 4, 10)
	if quad < lin {
		t.Errorf("quad factor %d < lin factor %d at high fuzz level", quad, lin)
	}
}

func TestScheduleFactorsBounded(t *testing.T) {
	for _, s := range []PowerSchedule{ScheduleFast, ScheduleExplore, ScheduleCOE, ScheduleLin, ScheduleQuad} {
		for lvl := 0; lvl < 20; lvl++ {
			for _, freq := range []uint64{0, 1, 7, 1000, 1 << 40} {
				got := scheduleFactor(s, lvl, freq, 100)
				if got < 0 || got > maxEnergyFactor {
					t.Fatalf("%s(lvl=%d,f=%d) = %d out of [0,%d]", s, lvl, freq, got, maxEnergyFactor)
				}
			}
		}
	}
}

func TestPathStats(t *testing.T) {
	ps := newPathStats()
	ps.observe(1)
	ps.observe(1)
	ps.observe(2)
	if ps.frequency(1) != 2 || ps.frequency(2) != 1 || ps.frequency(3) != 0 {
		t.Error("frequency accounting wrong")
	}
	if ps.mean() != 1 { // 3 execs / 2 paths = 1 (integer)
		t.Errorf("mean = %d", ps.mean())
	}
}

func TestCampaignWithFastSchedule(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 12, Scheme: SchemeBigMap, Schedule: ScheduleFast})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	if err := f.RunExecs(10000); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.EdgesDiscovered == 0 || st.Paths == 0 {
		t.Errorf("fast-schedule campaign went nowhere: %+v", st)
	}
	// Fuzzed entries must carry their level.
	leveled := 0
	for _, e := range f.Queue().Entries() {
		if e.FuzzLevel > 0 {
			leveled++
		}
	}
	if leveled == 0 {
		t.Error("no entry recorded a fuzz level")
	}
}

func TestNewRejectsBogusSchedule(t *testing.T) {
	if _, err := New(fuzzTarget(t), Config{Schedule: "bogus"}); err == nil {
		t.Error("bogus schedule accepted by New")
	}
}
