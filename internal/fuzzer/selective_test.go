package fuzzer

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/bigmap/bigmap/internal/checkpoint"
	"github.com/bigmap/bigmap/internal/core"
)

// snapshotBytes encodes the instance's full campaign state with the
// selective-tracing observability counters zeroed out: the filter changes how
// verdicts are computed, never what they are, so every other byte of the
// checkpoint must match the always-traced campaign exactly.
func snapshotBytes(t *testing.T, f *Fuzzer) []byte {
	t.Helper()
	st := f.Snapshot()
	st.FilterSkips, st.FilterFulls = 0, 0
	return checkpoint.EncodeFuzzer(st)
}

// TestSelectiveMatchesTraced is the fuzzer-level soundness pin for selective
// tracing: identical campaigns with the filter off and on must evolve
// bitwise-identical state — virgin maps, queue, crash buckets, RNG streams,
// every counter except the filter's own bookkeeping.
func TestSelectiveMatchesTraced(t *testing.T) {
	prog := fuzzTarget(t)
	for name, base := range map[string]Config{
		"afl":    {Seed: 21, HavocRounds: 32, SpliceRounds: 8},
		"bigmap": {Scheme: SchemeBigMap, MapSize: core.MapSize2M, Seed: 22, HavocRounds: 32, SpliceRounds: 8},
	} {
		base := base
		t.Run(name, func(t *testing.T) {
			run := func(selective bool) *Fuzzer {
				cfg := base
				cfg.Selective = selective
				f, err := New(prog, cfg)
				if err != nil {
					t.Fatal(err)
				}
				seedCorpus(t, f, prog, 3)
				stepN(t, f, 6)
				return f
			}
			traced := run(false)
			selective := run(true)

			if selective.filterSkips == 0 {
				t.Fatal("filter never skipped: the selective path was not exercised")
			}
			if traced.filterSkips != 0 || traced.filterFulls != 0 {
				t.Fatal("traced campaign moved the filter counters")
			}

			wantFP, gotFP := takeFingerprint(traced), takeFingerprint(selective)
			wantFP.Stats.FilterSkips, wantFP.Stats.FilterFulls = 0, 0
			gotFP.Stats.FilterSkips, gotFP.Stats.FilterFulls = 0, 0
			if !reflect.DeepEqual(wantFP, gotFP) {
				t.Fatalf("selective campaign diverged from traced:\n got  %+v\n want %+v", gotFP, wantFP)
			}
			if !bytes.Equal(snapshotBytes(t, traced), snapshotBytes(t, selective)) {
				t.Fatal("selective campaign checkpoint bytes diverged from traced")
			}
		})
	}
}

// TestBatchedMatchesSequential pins the batched havoc stage: with the same
// config (adaptive havoc off, no schedule) the batched campaign must replay
// the sequential one's mutant stream and land on identical state — with and
// without the selective filter stacked on top.
func TestBatchedMatchesSequential(t *testing.T) {
	prog := fuzzTarget(t)
	for name, base := range map[string]Config{
		"afl":    {Seed: 31, HavocRounds: 32, SpliceRounds: 8},
		"bigmap": {Scheme: SchemeBigMap, MapSize: core.MapSize2M, Seed: 32, HavocRounds: 32, SpliceRounds: 8},
	} {
		base := base
		t.Run(name, func(t *testing.T) {
			run := func(batch int, selective bool) *Fuzzer {
				cfg := base
				cfg.BatchSize = batch
				cfg.Selective = selective
				f, err := New(prog, cfg)
				if err != nil {
					t.Fatal(err)
				}
				seedCorpus(t, f, prog, 3)
				stepN(t, f, 6)
				return f
			}
			sequential := run(0, false)
			want := snapshotBytes(t, sequential)
			for _, tc := range []struct {
				label     string
				batch     int
				selective bool
			}{
				{"batch8", 8, false},
				{"batch5-odd-tail", 5, false},
				{"batch8-selective", 8, true},
			} {
				got := run(tc.batch, tc.selective)
				if !bytes.Equal(want, snapshotBytes(t, got)) {
					t.Fatalf("%s: batched campaign checkpoint bytes diverged from sequential", tc.label)
				}
				if tc.selective && got.filterSkips == 0 {
					t.Fatalf("%s: filter never skipped", tc.label)
				}
			}
		})
	}
}

// TestSelectiveConfigValidation pins the soundness preconditions: every
// combination that would silently change campaign semantics is a hard
// configuration error, not a degraded mode.
func TestSelectiveConfigValidation(t *testing.T) {
	prog := fuzzTarget(t)
	for name, cfg := range map[string]Config{
		"selective+schedule":    {Selective: true, Schedule: ScheduleFast},
		"selective+calibration": {Selective: true, CalibrationRuns: 2},
		"batch+adaptive":        {BatchSize: 4, AdaptiveHavoc: true},
		"batch+schedule":        {BatchSize: 4, Schedule: ScheduleFast},
		"batch+calibration":     {BatchSize: 4, CalibrationRuns: 2},
		"batch+timings":         {BatchSize: 4, TrackTimings: true},
		"batch+split":           {BatchSize: 4, SplitClassifyCompare: true},
		"negative-batch":        {BatchSize: -1},
	} {
		if _, err := New(prog, cfg); err == nil {
			t.Errorf("%s: config accepted, want error", name)
		}
	}
	for name, cfg := range map[string]Config{
		"selective+batch":   {Selective: true, BatchSize: 8},
		"selective+exploit": {Selective: true, Schedule: ScheduleExploit},
		"batch-of-one":      {BatchSize: 1, AdaptiveHavoc: true},
	} {
		if _, err := New(prog, cfg); err != nil {
			t.Errorf("%s: %v, want accepted", name, err)
		}
	}
}
