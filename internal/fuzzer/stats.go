package fuzzer

import "time"

// Timings attributes wall-clock time to the per-testcase phases of Figure 3.
// ClassifyCompare accumulates the merged single-pass traversal (§IV-E); when
// Config.SplitClassifyCompare is set, Classify and Compare accumulate
// separately instead, reproducing vanilla AFL's cost breakdown.
type Timings struct {
	Execution       time.Duration
	Reset           time.Duration
	Classify        time.Duration
	Compare         time.Duration
	ClassifyCompare time.Duration
	Hash            time.Duration
}

// MapOps returns the total time spent on map operations.
func (t Timings) MapOps() time.Duration {
	return t.Reset + t.Classify + t.Compare + t.ClassifyCompare + t.Hash
}

// Total returns execution plus map-operation time.
func (t Timings) Total() time.Duration {
	return t.Execution + t.MapOps()
}

// Add accumulates other into t.
func (t *Timings) Add(other Timings) {
	t.Execution += other.Execution
	t.Reset += other.Reset
	t.Classify += other.Classify
	t.Compare += other.Compare
	t.ClassifyCompare += other.ClassifyCompare
	t.Hash += other.Hash
}

// Stats is a snapshot of a fuzzing instance's progress.
type Stats struct {
	// Execs counts generated-and-executed test cases.
	Execs uint64
	// CyclesDone counts completed passes over the whole queue (AFL's
	// cycles_done).
	CyclesDone int
	// Paths is the queue size (AFL's paths_total).
	Paths int
	// PendingFavored counts favored queue entries not yet fuzzed.
	PendingFavored int
	// EdgesDiscovered is the global coverage (slots with any discovered
	// bucket bit).
	EdgesDiscovered int
	// Crashes is the total number of crashing executions; UniqueCrashes
	// counts Crashwalk-style buckets; UniqueCrashesAFL counts crashes
	// that showed new crash-coverage (AFL's built-in dedup, reported for
	// comparison — the paper notes it is biased towards larger maps).
	Crashes          uint64
	UniqueCrashes    int
	UniqueCrashesAFL int
	// Hangs counts budget-exhausted executions.
	Hangs uint64
	// UsedKeys is the map's used_key (BigMap) or map size (AFL scheme).
	UsedKeys int
	// CalibExecs counts executions spent on calibration re-runs and
	// crash/hang verification (included in Execs).
	CalibExecs uint64
	// VariableEdges counts coverage slots calibration found unstable and
	// masked out of novelty detection (AFL's var_bytes).
	VariableEdges int
	// Stability is the percentage of discovered edges that behaved
	// deterministically: 100 * (1 - VariableEdges/EdgesDiscovered). 100 on
	// a clean deterministic target; below 100 under flaky instrumentation.
	Stability float64
	// SpuriousCrashes and SpuriousHangs count one-off verdicts that failed
	// verification and were quarantined rather than filed.
	SpuriousCrashes uint64
	SpuriousHangs   uint64
	// FilterSkips and FilterFulls report selective tracing (Config.Selective):
	// executions the MaybeNew prefilter proved uninteresting (no traversal
	// ran) versus executions where it triggered the full classify-and-compare.
	// Both zero when the filter is off.
	FilterSkips uint64
	FilterFulls uint64
	// MapSaturated reports that a slot-capped BigMap has assigned every
	// dense slot; DroppedKeys counts first-sight coverage keys discarded
	// after that point. Non-zero drops mean coverage feedback is incomplete
	// — the campaign degrades gracefully but should be re-run with a larger
	// slot region.
	MapSaturated bool
	DroppedKeys  uint64
	// Timings holds per-phase time when Config.TrackTimings is set.
	Timings Timings
}
