package fuzzer

import (
	"fmt"
	"sort"

	"github.com/bigmap/bigmap/internal/checkpoint"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/corpus"
	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/target"
)

// Snapshot captures the instance's complete campaign state as a checkpoint
// struct. Call it only between Steps (never mid-round): at a step boundary
// the coverage map's hit counters are scratch, the mutator has no pending
// reward attribution, and the snapshot is a consistent cut — a fuzzer
// resumed from it replays the exact execution stream the original would
// have produced (see TestResumeMatchesUninterrupted).
func (f *Fuzzer) Snapshot() *checkpoint.FuzzerState {
	st := &checkpoint.FuzzerState{
		Scheme:          string(f.cfg.Scheme),
		MapSize:         uint64(f.cfg.MapSize),
		RNG:             f.src.State(),
		MutRNG:          f.mut.Source().State(),
		Execs:           f.execs,
		CyclesDone:      uint64(f.cyclesDone),
		QueuePos:        uint64(f.queuePos),
		TotalCrashes:    f.totalCrashes,
		TotalHangs:      f.totalHangs,
		AFLUniqueCrash:  uint64(f.aflUniqueCrash),
		SumCycles:       f.sumCycles,
		SumEdges:        f.sumEdges,
		RejectedSeeds:   uint64(f.rejectedSeeds),
		CalibExecs:      f.calibExecs,
		SpuriousCrashes: f.spuriousCrashes,
		SpuriousHangs:   f.spuriousHangs,
		FilterSkips:     f.filterSkips,
		FilterFulls:     f.filterFulls,
		VirginAll:       f.virginAll.Bits(),
		VirginCrash:     f.virginCrash.Bits(),
		VirginHang:      f.virginHang.Bits(),
	}
	if fa, ok := f.exec.Runner().(*target.Faulty); ok {
		st.FaultExecs = fa.ExecCount()
	}
	if bm, ok := f.cov.(*core.BigMap); ok {
		st.SlotKeys = bm.SlotKeys()
		st.DroppedKeys = bm.DroppedKeys()
	}
	if len(f.varSlots) > 0 {
		st.VarSlots = make([]uint32, 0, len(f.varSlots))
		//bigmap:nondeterministic-ok iteration feeds a sort.Slice below; serialized order is deterministic
		for s := range f.varSlots {
			st.VarSlots = append(st.VarSlots, s)
		}
		sort.Slice(st.VarSlots, func(i, j int) bool { return st.VarSlots[i] < st.VarSlots[j] })
	}
	topSlots, topIdx := f.queue.TopRated()
	st.TopSlots = topSlots
	st.TopEntries = make([]uint64, len(topIdx))
	for i, idx := range topIdx {
		st.TopEntries[i] = uint64(idx)
	}
	entries := f.queue.Entries()
	st.Entries = make([]checkpoint.Entry, len(entries))
	for i, e := range entries {
		st.Entries[i] = checkpoint.Entry{
			Input:      append([]byte(nil), e.Input...),
			Cycles:     e.Cycles,
			Touched:    append([]uint32(nil), e.Touched...),
			PathHash:   e.PathHash,
			Depth:      e.Depth,
			FoundBy:    e.FoundBy,
			Favored:    e.Favored,
			WasFuzzed:  e.WasFuzzed,
			WasTrimmed: e.WasTrimmed,
			FuzzLevel:  e.FuzzLevel,
		}
	}
	recs := f.crashes.Records() // sorted by key: deterministic layout
	st.Crashes = make([]checkpoint.CrashRecord, len(recs))
	for i, r := range recs {
		st.Crashes[i] = checkpoint.CrashRecord{
			Key:        r.Key,
			Site:       r.Site,
			StackDepth: r.StackDepth,
			Count:      r.Count,
			Input:      append([]byte(nil), r.Input...),
		}
	}
	if f.paths != nil {
		st.Paths = make([]checkpoint.PathFreq, 0, len(f.paths.freq))
		//bigmap:nondeterministic-ok iteration feeds a sort.Slice below; serialized order is deterministic
		for h, n := range f.paths.freq {
			st.Paths = append(st.Paths, checkpoint.PathFreq{Hash: h, Count: n})
		}
		sort.Slice(st.Paths, func(i, j int) bool { return st.Paths[i].Hash < st.Paths[j].Hash })
	}
	st.OpUsed, st.OpSuccess = f.mut.OperatorStats()
	if pending := f.mut.PendingOps(); len(pending) > 0 {
		st.OpPending = make([]uint64, len(pending))
		for i, op := range pending {
			st.OpPending[i] = uint64(op)
		}
	}
	return st
}

// Resume reconstructs a fuzzing instance from a checkpoint. prog and cfg
// must be the campaign's originals (the checkpoint stores no program and
// only the scheme/size part of the config; a scheme or size mismatch is
// rejected, everything else is trusted). The restored instance reproduces
// the uninterrupted campaign exactly: map slot assignments, virgin bits,
// queue (including favored/fuzzed flags), crash buckets, path frequencies,
// RNG streams and — for fault-injected targets — the fault decision index
// all pick up where the snapshot left off.
func Resume(prog *target.Program, cfg Config, st *checkpoint.FuzzerState) (*Fuzzer, error) {
	f, err := New(prog, cfg)
	if err != nil {
		return nil, err
	}
	if string(f.cfg.Scheme) != st.Scheme {
		return nil, fmt.Errorf("fuzzer: resume scheme mismatch: config %q, checkpoint %q",
			f.cfg.Scheme, st.Scheme)
	}
	if uint64(f.cfg.MapSize) != st.MapSize {
		return nil, fmt.Errorf("fuzzer: resume map size mismatch: config %d, checkpoint %d",
			f.cfg.MapSize, st.MapSize)
	}

	if bm, ok := f.cov.(*core.BigMap); ok {
		if err := bm.RestoreAssignments(st.SlotKeys, st.DroppedKeys); err != nil {
			return nil, fmt.Errorf("fuzzer: resume: %w", err)
		}
	} else if len(st.SlotKeys) > 0 {
		return nil, fmt.Errorf("fuzzer: checkpoint carries %d slot assignments for a flat map",
			len(st.SlotKeys))
	}
	if err := f.virginAll.SetBits(st.VirginAll); err != nil {
		return nil, fmt.Errorf("fuzzer: resume virgin map: %w", err)
	}
	if err := f.virginCrash.SetBits(st.VirginCrash); err != nil {
		return nil, fmt.Errorf("fuzzer: resume crash virgin map: %w", err)
	}
	if err := f.virginHang.SetBits(st.VirginHang); err != nil {
		return nil, fmt.Errorf("fuzzer: resume hang virgin map: %w", err)
	}
	for _, s := range st.VarSlots {
		f.varSlots[s] = true
	}

	// Rebuild the queue in insertion order, then install the checkpointed
	// top-rated table verbatim. The table is not recomputed from the entries
	// because it depends on the original campaign's Add/trim interleaving
	// (trim changes an entry's fav factor after it was added); replaying Add
	// against final entry state could crown different champions and diverge.
	for i := range st.Entries {
		ce := &st.Entries[i]
		e := &corpus.Entry{
			Input:      append([]byte(nil), ce.Input...),
			Cycles:     ce.Cycles,
			EdgeCount:  len(ce.Touched),
			Touched:    append([]uint32(nil), ce.Touched...),
			PathHash:   ce.PathHash,
			Depth:      ce.Depth,
			FoundBy:    ce.FoundBy,
			Favored:    ce.Favored,
			WasFuzzed:  ce.WasFuzzed,
			WasTrimmed: ce.WasTrimmed,
			FuzzLevel:  ce.FuzzLevel,
		}
		f.queue.AddRestored(e)
	}
	if len(st.TopEntries) != len(st.TopSlots) {
		return nil, fmt.Errorf("fuzzer: checkpoint top-rated table is malformed (%d slots, %d entries)",
			len(st.TopSlots), len(st.TopEntries))
	}
	topIdx := make([]int, len(st.TopEntries))
	for i, v := range st.TopEntries {
		topIdx[i] = int(v)
	}
	if err := f.queue.RestoreTopRated(st.TopSlots, topIdx); err != nil {
		return nil, fmt.Errorf("fuzzer: resume: %w", err)
	}

	if len(st.Crashes) > 0 {
		recs := make([]crash.Record, len(st.Crashes))
		for i, c := range st.Crashes {
			recs[i] = crash.Record{
				Key:        c.Key,
				Site:       c.Site,
				StackDepth: c.StackDepth,
				Count:      c.Count,
				Input:      c.Input,
			}
		}
		f.crashes.Restore(recs)
	}
	if f.paths != nil {
		for _, p := range st.Paths {
			f.paths.freq[p.Hash] = p.Count
			f.paths.total += p.Count
		}
	}
	if st.OpUsed != nil || st.OpSuccess != nil {
		pending := make([]int, len(st.OpPending))
		for i, op := range st.OpPending {
			pending[i] = int(op)
		}
		f.mut.RestoreOperatorStats(st.OpUsed, st.OpSuccess, pending)
	}
	if fa, ok := f.exec.Runner().(*target.Faulty); ok {
		fa.SetExecCount(st.FaultExecs)
	}

	f.src.SetState(st.RNG)
	f.mut.Source().SetState(st.MutRNG)
	f.execs = st.Execs
	f.cyclesDone = int(st.CyclesDone)
	f.queuePos = int(st.QueuePos)
	f.totalCrashes = st.TotalCrashes
	f.totalHangs = st.TotalHangs
	f.aflUniqueCrash = int(st.AFLUniqueCrash)
	f.sumCycles = st.SumCycles
	f.sumEdges = st.SumEdges
	f.rejectedSeeds = int(st.RejectedSeeds)
	f.calibExecs = st.CalibExecs
	f.spuriousCrashes = st.SpuriousCrashes
	f.spuriousHangs = st.SpuriousHangs
	f.filterSkips = st.FilterSkips
	f.filterFulls = st.FilterFulls
	return f, nil
}
