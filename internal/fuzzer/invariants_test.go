package fuzzer

import "testing"

// TestCampaignInvariants runs a campaign and checks cross-cutting stats
// invariants after every step.
func TestCampaignInvariants(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 31, Scheme: SchemeBigMap, HavocRounds: 32, SpliceRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	seeds := f.Queue().Len()

	var prevExecs uint64
	for step := 0; step < 40; step++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
		st := f.Stats()
		if st.Execs <= prevExecs {
			t.Fatalf("step %d: execs did not advance (%d -> %d)", step, prevExecs, st.Execs)
		}
		prevExecs = st.Execs
		if st.UniqueCrashes > int(st.Crashes) {
			t.Fatalf("step %d: unique crashes %d > total %d", step, st.UniqueCrashes, st.Crashes)
		}
		if st.Paths < seeds {
			t.Fatalf("step %d: queue shrank below seed count", step)
		}
		if st.UsedKeys > f.Map().Size() {
			t.Fatalf("step %d: used_key %d > map size", step, st.UsedKeys)
		}
		if st.EdgesDiscovered > st.UsedKeys {
			t.Fatalf("step %d: discovered %d > used_key %d (BigMap cannot discover unassigned slots)",
				step, st.EdgesDiscovered, st.UsedKeys)
		}
		if st.PendingFavored > st.Paths {
			t.Fatalf("step %d: pending favored %d > paths %d", step, st.PendingFavored, st.Paths)
		}
	}
	if f.Stats().CyclesDone == 0 && prevExecs > 50000 {
		t.Log("note: no full queue cycle completed; acceptable for short runs")
	}
}

// TestQueueEntriesWellFormed checks the invariants of everything the
// campaign filed into the queue.
func TestQueueEntriesWellFormed(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 32, Scheme: SchemeAFL})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	if err := f.RunExecs(8000); err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{"seed": true, "havoc": true, "splice": true, "det": true, "sync": true, "cmplog": true}
	for i, e := range f.Queue().Entries() {
		if len(e.Input) == 0 {
			t.Errorf("entry %d: empty input", i)
		}
		if e.EdgeCount != len(e.Touched) {
			t.Errorf("entry %d: EdgeCount %d != len(Touched) %d", i, e.EdgeCount, len(e.Touched))
		}
		if e.EdgeCount == 0 {
			t.Errorf("entry %d: touches no coverage", i)
		}
		if !valid[e.FoundBy] {
			t.Errorf("entry %d: unknown provenance %q", i, e.FoundBy)
		}
		for j := 1; j < len(e.Touched); j++ {
			if e.Touched[j-1] >= e.Touched[j] {
				t.Errorf("entry %d: Touched not strictly ascending", i)
				break
			}
		}
	}
}
