// Package fuzzer implements the coverage-guided evolutionary loop of AFL
// (paper §II-A, Figure 1) on top of the executor, mutation, corpus and crash
// packages. The loop is scheme-agnostic: it drives whatever coverage map the
// configuration selects, which is how the harness compares AFL's flat bitmap
// against BigMap under otherwise identical seed scheduling and mutation.
package fuzzer

import (
	"fmt"
	"time"

	"github.com/bigmap/bigmap/internal/cmplog"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/corpus"
	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/executor"
	"github.com/bigmap/bigmap/internal/mutation"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// Fuzzer is one fuzzing instance: one target, one coverage map, one seed
// pool. Not safe for concurrent use; parallel campaigns run one Fuzzer per
// goroutine (package parallel).
type Fuzzer struct {
	cfg  Config
	cov  core.Map
	exec *executor.Executor

	virginAll   *core.Virgin
	virginCrash *core.Virgin
	virginHang  *core.Virgin

	queue   *corpus.Queue
	mut     *mutation.Mutator
	src     *rng.Source
	crashes *crash.Deduper
	cmp     *cmplog.Collector
	paths   *pathStats

	execs          uint64
	deadline       time.Time        // non-zero during RunFor: abort stages when past
	now            func() time.Time // clock behind RunFor deadlines and stage timings; swappable in tests
	cyclesDone     int
	totalCrashes   uint64
	totalHangs     uint64
	aflUniqueCrash int
	timings        Timings
	queuePos       int
	touchedScratch []uint32
	sumCycles      uint64 // across queue entries, for perf scoring
	sumEdges       uint64
	rejectedSeeds  int

	// Selective-tracing state (Config.Selective). selective mirrors the
	// config flag (validation guarantees the filter's soundness conditions:
	// no power schedule, no calibration); the counters feed telemetry and
	// are checkpointed as observability state.
	selective   bool
	filterSkips uint64 // executions the MaybeNew prefilter proved uninteresting
	filterFulls uint64 // executions where the filter triggered the full traversal

	// Batched-havoc state (Config.BatchSize > 1). batchArena holds one
	// reusable buffer per batch slot so a round of mutants allocates only on
	// first growth; batchVisit is the bound method value passed to
	// executor.ExecuteBatch (bound once so the hot loop does not allocate a
	// closure per batch); batchDepth carries the queue depth of the entry
	// being fuzzed into the callback.
	batchArena [][]byte
	batchVisit func(i int, res target.Result, verdict core.Verdict, skipped bool)
	batchDepth int

	// Calibration & fault-robustness state (Config.CalibrationRuns > 0).
	varSlots        map[uint32]bool // coverage slots calibration found unstable
	calibExecs      uint64          // executions spent on calibration and verification
	spuriousCrashes uint64          // one-off crash verdicts quarantined
	spuriousHangs   uint64          // one-off hang verdicts quarantined

	// tel holds the optional observability handles (telemetry.go); the zero
	// value is the disabled fast path.
	tel telemetryHooks
}

// New creates a fuzzing instance for prog.
func New(prog *target.Program, cfg Config) (*Fuzzer, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	cov, err := cfg.Scheme.NewMapSlots(cfg.MapSize, cfg.SlotCap)
	if err != nil {
		return nil, fmt.Errorf("map scheme %q: %w", cfg.Scheme, err)
	}
	metric, err := cfg.Metric(cfg.MapSize)
	if err != nil {
		return nil, fmt.Errorf("metric: %w", err)
	}
	if prog == nil {
		return nil, executor.ErrNilDependency
	}
	var runner target.Runner = target.NewInterp(prog)
	if cfg.Faults != nil {
		runner = target.NewFaulty(prog, *cfg.Faults)
	}
	exe, err := executor.NewWithRunner(runner, metric, cov, cfg.ExecBudget)
	if err != nil {
		return nil, err
	}
	exe.SetCostFactor(cfg.ExecCostFactor)
	src := rng.New(cfg.Seed ^ 0xf022a11)
	mut := mutation.New(src.Split(), cfg.Dict)
	if cfg.AdaptiveHavoc {
		mut.EnableAdaptive()
	}
	var collector *cmplog.Collector
	if cfg.EnableCmpLog {
		collector = cmplog.NewCollector(prog, cfg.ExecBudget, 0)
	}
	var paths *pathStats
	if cfg.Schedule != "" && cfg.Schedule != ScheduleExploit {
		paths = newPathStats()
	}
	f := &Fuzzer{
		cfg:         cfg,
		cov:         cov,
		exec:        exe,
		selective:   cfg.Selective,
		virginAll:   cov.NewVirgin(),
		virginCrash: cov.NewVirgin(),
		virginHang:  cov.NewVirgin(),
		queue:       corpus.NewQueue(),
		mut:         mut,
		src:         src,
		crashes:     crash.NewDeduper(),
		cmp:         collector,
		paths:       paths,
		// Sized to the map's initial slot capacity so steady-state enqueues
		// never grow it (AppendTouched returns at most UsedKeys entries).
		touchedScratch: make([]uint32, 0, 4096),
		varSlots:       make(map[uint32]bool),
		tel:            newTelemetryHooks(cfg.Telemetry, cov),
		// The clock feeds only the RunFor deadline (a wall-clock API by
		// contract) and the stage-timing stats; nothing resume-relevant
		// reads it. The field indirection keeps this the sole wall-clock
		// site in the package.
		now: time.Now, //bigmap:nondeterministic-ok sole audited clock source: deadlines and stats timing only
	}
	if cfg.BatchSize > 1 {
		f.batchArena = make([][]byte, cfg.BatchSize)
		f.batchVisit = f.visitBatched
	}
	return f, nil
}

// Map exposes the coverage map (for harness inspection).
func (f *Fuzzer) Map() core.Map { return f.cov }

// Telemetry returns the instance's observability registry, nil when
// telemetry was not configured. Callers layering their own timings (e.g.
// checkpoint I/O around a single-threaded instance) record into it.
func (f *Fuzzer) Telemetry() *telemetry.Registry { return f.cfg.Telemetry }

// Queue exposes the seed pool (for harness inspection and corpus sync).
func (f *Fuzzer) Queue() *corpus.Queue { return f.queue }

// Crashes exposes the Crashwalk-style deduper.
func (f *Fuzzer) Crashes() *crash.Deduper { return f.crashes }

// AddSeed runs one user-provided seed and enqueues it. Mirroring AFL's
// startup behaviour, seeds enter the queue whether or not they add coverage,
// but crashing or hanging seeds are rejected. The selective-tracing filter
// is bypassed: the unconditional enqueue reads the classified trace (hash,
// touched slots), so the full traversal must always run for seeds.
func (f *Fuzzer) AddSeed(input []byte) error {
	res, verdict := f.runOne(input, false)
	switch res.Status {
	case target.StatusCrash, target.StatusHang:
		f.rejectedSeeds++
		return fmt.Errorf("fuzzer: seed %s during dry run", res.Status)
	default:
	}
	_ = verdict // seeds are enqueued regardless of verdict
	f.enqueue(input, res, "seed", 0)
	return nil
}

// RunExecs fuzzes until at least n test cases have been executed since the
// call. Returns ErrNoSeeds if the queue is empty.
func (f *Fuzzer) RunExecs(n uint64) error {
	stop := f.execs + n
	for f.execs < stop {
		if err := f.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunFor fuzzes until d wall-clock time has elapsed. Unlike RunExecs, the
// deadline is also honoured inside a fuzz round (checked every few dozen
// executions), so slow configurations (large flat maps) cannot overshoot
// the budget by a whole round — that matters for fair wall-clock
// comparisons like the scaling experiment.
func (f *Fuzzer) RunFor(d time.Duration) error {
	f.deadline = f.now().Add(d)
	defer func() { f.deadline = time.Time{} }()
	for f.now().Before(f.deadline) {
		if err := f.Step(); err != nil {
			return err
		}
	}
	return nil
}

// pastDeadline reports whether a RunFor deadline has expired. The check is
// amortized: callers invoke it every few dozen executions.
func (f *Fuzzer) pastDeadline() bool {
	return !f.deadline.IsZero() && f.now().After(f.deadline)
}

// Step selects one queue entry (with AFL's favored-skip probabilities) and
// runs a full fuzz round on it: optional deterministic stages, havoc, and
// splice. One call executes hundreds to thousands of test cases.
func (f *Fuzzer) Step() error {
	if f.queue.Len() == 0 {
		return ErrNoSeeds
	}
	f.queue.Cull()
	e := f.selectEntry()
	if !f.cfg.DisableTrim && !e.WasTrimmed {
		t0 := f.tel.stageTrim.Start()
		f.trim(e)
		f.tel.stageTrim.Done(t0)
		e.WasTrimmed = true
	}
	f.fuzzEntry(e)
	e.WasFuzzed = true
	return nil
}

// selectEntry cycles through the queue applying AFL's skip probabilities:
// while favored entries are pending, non-favored ones are almost always
// skipped; afterwards they still fuzz rarely.
func (f *Fuzzer) selectEntry() *corpus.Entry {
	pending := f.queue.PendingFavored()
	for attempts := 0; attempts < 10*f.queue.Len(); attempts++ {
		if f.queuePos != 0 && f.queuePos%f.queue.Len() == 0 {
			f.cyclesDone++
		}
		e := f.queue.Get(f.queuePos % f.queue.Len())
		f.queuePos++
		if e.Favored {
			return e
		}
		var skipPct int
		switch {
		case pending > 0:
			skipPct = skipToNewPct
		case e.WasFuzzed:
			skipPct = skipNfavOldPct
		default:
			skipPct = skipNfavNewPct
		}
		if f.src.Intn(100) >= skipPct {
			return e
		}
	}
	return f.queue.Get(f.queuePos % f.queue.Len())
}

// fuzzEntry runs the mutation stages against one entry.
func (f *Fuzzer) fuzzEntry(e *corpus.Entry) {
	depth := e.Depth + 1

	if f.cmp != nil && !e.WasFuzzed {
		t0 := f.tel.stageCmplog.Start()
		f.cmpLogStage(e, depth)
		f.tel.stageCmplog.Done(t0)
	}

	if f.cfg.RunDeterministic && !e.WasFuzzed {
		t0 := f.tel.stageDet.Start()
		n := 0
		f.mut.Deterministic(e.Input, func(candidate []byte) bool {
			f.evaluate(candidate, "det", depth)
			n++
			return n&255 != 255 || !f.pastDeadline()
		})
		f.tel.stageDet.Done(t0)
	}

	rounds := f.havocRounds(e)
	if f.paths != nil {
		factor := scheduleFactor(f.cfg.Schedule, e.FuzzLevel,
			f.paths.frequency(e.PathHash), f.paths.mean())
		rounds = rounds * factor / 4
		if factor > 0 && rounds < 8 {
			rounds = 8
		}
	}
	h0 := f.tel.stageHavoc.Start()
	if f.cfg.BatchSize > 1 {
		for done := 0; done < rounds; {
			n := f.cfg.BatchSize
			if rem := rounds - done; n > rem {
				n = rem
			}
			f.runHavocBatch(e.Input, n, depth)
			done += n
			if f.pastDeadline() {
				f.tel.stageHavoc.Done(h0)
				e.FuzzLevel++
				return
			}
		}
	} else {
		for i := 0; i < rounds; i++ {
			if i&63 == 63 && f.pastDeadline() {
				f.tel.stageHavoc.Done(h0)
				e.FuzzLevel++
				return
			}
			before := f.queue.Len()
			f.evaluate(f.mut.Havoc(e.Input), "havoc", depth)
			f.mut.RewardLast(f.queue.Len() > before)
		}
	}
	f.tel.stageHavoc.Done(h0)
	e.FuzzLevel++

	if f.queue.Len() > 1 {
		s0 := f.tel.stageSplice.Start()
		for i := 0; i < f.cfg.SpliceRounds; i++ {
			if i&15 == 15 && f.pastDeadline() {
				f.tel.stageSplice.Done(s0)
				return
			}
			other := f.queue.Get(f.src.Intn(f.queue.Len()))
			if other == e {
				continue
			}
			spliced := f.mut.Splice(e.Input, other.Input)
			if spliced == nil {
				continue
			}
			f.evaluate(f.mut.Havoc(spliced), "splice", depth)
		}
		f.tel.stageSplice.Done(s0)
	}
}

// cmpLogStage collects the entry's failed comparisons and evaluates one
// targeted mutant per comparison, patching the wanted operand bytes into the
// input (input-to-state). The collection run costs one execution.
func (f *Fuzzer) cmpLogStage(e *corpus.Entry, depth int) {
	f.execs++ // the collection replay
	f.tel.execs.Inc()
	for _, p := range f.cmp.Collect(e.Input) {
		f.evaluate(cmplog.Apply(e.Input, p), "cmplog", depth)
	}
}

// havocRounds computes a simplified AFL perf score: entries that are faster
// and cover more than the queue average earn more havoc rounds, favored
// entries likewise.
func (f *Fuzzer) havocRounds(e *corpus.Entry) int {
	rounds := f.cfg.HavocRounds
	n := uint64(f.queue.Len())
	if n > 0 {
		if avg := f.sumCycles / n; avg > 0 && e.Cycles < avg/2 {
			rounds *= 2
		}
		if avg := f.sumEdges / n; avg > 0 && uint64(e.EdgeCount) > avg*2 {
			rounds *= 2
		}
	}
	if e.Favored {
		rounds += rounds / 2
	}
	return rounds
}

// evaluate runs one candidate through the full coverage pipeline and files
// it (queue, crash bucket, hang) according to the fitness function.
func (f *Fuzzer) evaluate(candidate []byte, foundBy string, depth int) {
	res, verdict := f.runOne(candidate, true)
	switch res.Status {
	case target.StatusOK:
		if verdict != core.VerdictNone {
			input := make([]byte, len(candidate))
			copy(input, candidate)
			f.enqueue(input, res, foundBy, depth)
		}
	case target.StatusCrash:
		f.totalCrashes++
		f.tel.crashes.Inc()
		if verdict != core.VerdictNone {
			f.aflUniqueCrash++
		}
		f.crashes.Observe(res.CrashSite, res.Stack, candidate)
	case target.StatusHang:
		f.totalHangs++
		f.tel.hangs.Inc()
	}
}

// runHavocBatch pre-generates n havoc mutants into the reusable arena and
// runs them back-to-back through executor.ExecuteBatch. The mutant stream is
// exactly the sequential stage's (mut.Havoc draws from its own split RNG and
// evaluate consumes none), and visitBatched replicates evaluate's filing per
// status, so campaign state is bitwise-identical to the unbatched loop —
// batching only amortizes the per-execution pipeline overhead.
func (f *Fuzzer) runHavocBatch(seed []byte, n, depth int) {
	for i := 0; i < n; i++ {
		f.batchArena[i] = append(f.batchArena[i][:0], f.mut.Havoc(seed)...)
	}
	f.batchDepth = depth
	f.exec.ExecuteBatch(f.batchArena[:n], f.virginAll, f.selective, f.batchVisit)
}

// visitBatched is the ExecuteBatch callback: it files one batch execution the
// way evaluate would, while the input's trace is still live in the map. The
// executor decided coverage only for StatusOK results (against virginAll);
// crash and hang traces arrive raw and are decided here against the
// status-appropriate virgin, filter included — the same order of operations
// as runOne.
func (f *Fuzzer) visitBatched(i int, res target.Result, verdict core.Verdict, skipped bool) {
	f.execs++
	f.tel.execs.Inc()
	candidate := f.batchArena[i]
	switch res.Status {
	case target.StatusOK:
		if skipped {
			f.noteFilterSkip()
			return
		}
		if f.selective {
			f.noteFilterFull()
		}
		if verdict != core.VerdictNone {
			input := make([]byte, len(candidate)) //bigmap:alloc-ok discovery-only: the candidate is copied once per verdict-positive execution
			copy(input, candidate)
			f.enqueue(input, res, "havoc", f.batchDepth)
		}
	case target.StatusCrash:
		verdict = f.decideRaw(f.virginCrash)
		f.totalCrashes++
		f.tel.crashes.Inc()
		if verdict != core.VerdictNone {
			f.aflUniqueCrash++
		}
		f.crashes.Observe(res.CrashSite, res.Stack, candidate)
	case target.StatusHang:
		f.decideRaw(f.virginHang)
		f.totalHangs++
		f.tel.hangs.Inc()
	}
}

// decideRaw runs the coverage decision for a raw (unclassified) trace against
// virgin: the selective prefilter when enabled, then the merged traversal.
func (f *Fuzzer) decideRaw(virgin *core.Virgin) core.Verdict {
	if f.selective {
		if !f.cov.MaybeNew(virgin) {
			f.noteFilterSkip()
			return core.VerdictNone
		}
		f.noteFilterFull()
	}
	return f.cov.ClassifyAndCompare(virgin)
}

// runOne is the per-testcase pipeline of §II-A2: reset the map, execute,
// classify + compare against the appropriate virgin map, and (for
// interesting, non-crashing cases) hash. Every phase is optionally timed.
// With calibration enabled the pipeline adds crash/hang verification (see
// runVerified); otherwise it is the merged fast path below.
//
// allowFilter permits the selective-tracing prefilter (Config.Selective):
// after choosing the status-appropriate virgin map, the read-only MaybeNew
// scan runs first, and only executions it flags go through the full
// classify-and-compare traversal. The filter is exact, so a skip returns
// exactly the VerdictNone the traversal would have — but it leaves the trace
// unclassified, so callers that read the classified map regardless of
// verdict (AddSeed's unconditional enqueue) must pass allowFilter=false.
func (f *Fuzzer) runOne(input []byte, allowFilter bool) (target.Result, core.Verdict) {
	if f.cfg.CalibrationRuns > 0 {
		return f.runVerified(input)
	}
	timed := f.cfg.TrackTimings

	var t0 time.Time
	if timed {
		t0 = f.now()
	}
	f.cov.Reset()
	if timed {
		f.timings.Reset += f.now().Sub(t0)
		t0 = f.now()
	}

	e0 := f.tel.execNs.Start()
	res := f.exec.Execute(input)
	f.tel.execNs.Done(e0)
	f.execs++
	f.tel.execs.Inc()
	if timed {
		f.timings.Execution += f.now().Sub(t0)
	}

	virgin := f.virginAll
	switch res.Status {
	case target.StatusCrash:
		virgin = f.virginCrash
	case target.StatusHang:
		virgin = f.virginHang
	}

	if allowFilter && f.selective {
		if !f.cov.MaybeNew(virgin) {
			f.noteFilterSkip()
			return res, core.VerdictNone
		}
		f.noteFilterFull()
	}

	var verdict core.Verdict
	if f.cfg.SplitClassifyCompare {
		if timed {
			t0 = f.now()
		}
		f.cov.Classify()
		if timed {
			f.timings.Classify += f.now().Sub(t0)
			t0 = f.now()
		}
		verdict = f.cov.CompareWith(virgin)
		if timed {
			f.timings.Compare += f.now().Sub(t0)
		}
	} else {
		if timed {
			t0 = f.now()
		}
		verdict = f.cov.ClassifyAndCompare(virgin)
		if timed {
			f.timings.ClassifyCompare += f.now().Sub(t0)
		}
	}
	if f.paths != nil {
		// AFLFast's n_fuzz accounting hashes every classified trace. The
		// cost is the price of the schedule, as in the original.
		f.paths.observe(f.cov.Hash())
	}
	return res, verdict
}

// execClassify resets the map, executes input and classifies the trace,
// leaving the classified coverage in the map but deferring the virgin
// compare to the caller. This is the building block of the verification and
// calibration paths, which must be able to re-run an input before deciding
// which virgin map (if any) the result may touch.
func (f *Fuzzer) execClassify(input []byte) target.Result {
	timed := f.cfg.TrackTimings
	var t0 time.Time
	if timed {
		t0 = f.now()
	}
	f.cov.Reset()
	if timed {
		f.timings.Reset += f.now().Sub(t0)
		t0 = f.now()
	}
	e0 := f.tel.execNs.Start()
	res := f.exec.Execute(input)
	f.tel.execNs.Done(e0)
	f.execs++
	f.tel.execs.Inc()
	if timed {
		f.timings.Execution += f.now().Sub(t0)
		t0 = f.now()
	}
	f.cov.Classify()
	if timed {
		f.timings.Classify += f.now().Sub(t0)
	}
	return res
}

// runVerified is the calibrating variant of runOne. Crash and hang verdicts
// are not believed on first sight: the input is re-executed once, and a
// verdict that does not reproduce is quarantined — counted as spurious, with
// the reproducing (clean) run's result taking its place — BEFORE any virgin
// map is consulted, so a one-off fault can neither enqueue a bogus crash nor
// burn novelty in the crash/hang virgin maps. Variable slots that
// calibration suppressed from virginAll can never produce a verdict here.
func (f *Fuzzer) runVerified(input []byte) (target.Result, core.Verdict) {
	res := f.execClassify(input)
	if res.Status != target.StatusOK {
		first := res.Status
		res = f.execClassify(input) // verification re-run
		f.calibExecs++
		f.tel.calibExecs.Inc()
		if res.Status != first {
			if first == target.StatusCrash {
				f.spuriousCrashes++
			} else {
				f.spuriousHangs++
			}
		}
	}

	virgin := f.virginAll
	switch res.Status {
	case target.StatusCrash:
		virgin = f.virginCrash
	case target.StatusHang:
		virgin = f.virginHang
	}
	timed := f.cfg.TrackTimings
	var t0 time.Time
	if timed {
		t0 = f.now()
	}
	verdict := f.cov.CompareWith(virgin)
	if timed {
		f.timings.Compare += f.now().Sub(t0)
	}
	if f.paths != nil {
		f.paths.observe(f.cov.Hash())
	}
	return res, verdict
}

// calibrate re-executes a freshly enqueued input CalibrationRuns-1 more
// times, AFL's calibrate_case: coverage slots that do not appear in every
// clean run are "variable" — flaky instrumentation, not new behaviour — and
// are suppressed from virginAll so they can never produce a verdict again
// (AFL's var_bytes mask). Returns the entry's cycle cost averaged over the
// clean runs. Runs that crash or hang mid-calibration contribute nothing.
// The coverage map is clobbered; callers capture hash/touched beforehand.
func (f *Fuzzer) calibrate(input []byte, firstTouched []uint32, firstCycles uint64) uint64 {
	c0 := f.tel.stageCalibrate.Start()
	counts := make(map[uint32]int, len(firstTouched)) //bigmap:alloc-ok calibration runs once per new corpus entry, off the per-exec loop
	for _, s := range firstTouched {
		counts[s] = 1
	}
	okRuns := 1
	sum := firstCycles
	for i := 1; i < f.cfg.CalibrationRuns; i++ {
		res := f.execClassify(input)
		f.calibExecs++
		f.tel.calibExecs.Inc()
		if res.Status != target.StatusOK {
			continue
		}
		okRuns++
		sum += res.Cycles
		f.touchedScratch = f.cov.AppendTouched(f.touchedScratch[:0])
		for _, s := range f.touchedScratch {
			counts[s]++
		}
	}
	for s, n := range counts {
		if n != okRuns && !f.varSlots[s] {
			f.varSlots[s] = true
			f.virginAll.Suppress(s)
		}
	}
	f.tel.stageCalibrate.Done(c0)
	return sum / uint64(okRuns)
}

// runForHash executes an input and returns its classified-trace digest
// without consulting or updating any virgin map — the read-only run the trim
// stage needs for path comparison.
func (f *Fuzzer) runForHash(input []byte) (target.Result, uint64) {
	f.cov.Reset()
	e0 := f.tel.execNs.Start()
	res := f.exec.Execute(input)
	f.tel.execNs.Done(e0)
	f.execs++
	f.tel.execs.Inc()
	f.cov.Classify()
	return res, f.cov.Hash()
}

// enqueue files an interesting input into the queue. The target is
// deterministic, so a single execution doubles as AFL's calibration run:
// res.Cycles is already the exact execution cost.
func (f *Fuzzer) enqueue(input []byte, res target.Result, foundBy string, depth int) {
	timed := f.cfg.TrackTimings
	var t0 time.Time
	if timed {
		t0 = f.now()
	}
	pathHash := f.cov.Hash()
	if timed {
		f.timings.Hash += f.now().Sub(t0)
	}

	f.touchedScratch = f.cov.AppendTouched(f.touchedScratch[:0])
	touched := make([]uint32, len(f.touchedScratch)) //bigmap:alloc-ok discovery-only: touched slots are copied once per new corpus entry
	copy(touched, f.touchedScratch)

	cycles := res.Cycles
	if f.cfg.CalibrationRuns > 1 && res.Status == target.StatusOK {
		cycles = f.calibrate(input, touched, cycles)
	}

	e := &corpus.Entry{ //bigmap:alloc-ok discovery-only: one corpus entry allocation per discovery
		Input:     input,
		Cycles:    cycles,
		EdgeCount: len(touched),
		Touched:   touched,
		PathHash:  pathHash,
		Depth:     depth,
		FoundBy:   foundBy,
	}
	f.queue.Add(e)
	f.sumCycles += cycles
	f.sumEdges += uint64(len(touched))
	f.noteEnqueue()
}

// ImportInput re-executes an input found by another instance and enqueues it
// if it adds local coverage — AFL's corpus synchronization.
func (f *Fuzzer) ImportInput(input []byte) bool {
	res, verdict := f.runOne(input, true)
	if res.Status != target.StatusOK || verdict == core.VerdictNone {
		return false
	}
	in := make([]byte, len(input))
	copy(in, input)
	f.enqueue(in, res, "sync", 0)
	f.tel.imports.Inc()
	return true
}

// MergeVirginInto folds this instance's clean-run virgin map into a
// campaign-level union (package parallel's cross-instance coverage view).
// The map adapter translates BigMap's per-instance dense slots to raw
// coverage keys, so instances with different discovery orders land shared
// edges on the same union keys. Safe to call from the instance's own
// goroutine at a round boundary: the union handles cross-instance
// synchronization (atomically or under its lock), and the virgin map is only
// read.
func (f *Fuzzer) MergeVirginInto(u core.VirginUnion) {
	if m, ok := f.cov.(core.CoverageMerger); ok {
		m.MergeVirginInto(u, f.virginAll)
	}
}

// Stats snapshots the instance's progress. Every field is maintained
// incrementally (EdgesDiscovered is the virgin map's running counter, fed on
// the has_new_bits path), so polling is O(queue length) for the favored
// count and O(1) for everything else.
func (f *Fuzzer) Stats() Stats {
	discovered := f.virginAll.CountDiscovered()
	stability := 100.0
	if len(f.varSlots) > 0 {
		d := discovered
		if d < 1 {
			d = 1
		}
		stability = 100 * (1 - float64(len(f.varSlots))/float64(d))
		if stability < 0 {
			stability = 0
		}
	}
	st := Stats{
		Execs:            f.execs,
		CyclesDone:       f.cyclesDone,
		Paths:            f.queue.Len(),
		PendingFavored:   f.queue.PendingFavored(),
		EdgesDiscovered:  discovered,
		Crashes:          f.totalCrashes,
		UniqueCrashes:    f.crashes.Unique(),
		UniqueCrashesAFL: f.aflUniqueCrash,
		Hangs:            f.totalHangs,
		UsedKeys:         f.cov.UsedKeys(),
		CalibExecs:       f.calibExecs,
		VariableEdges:    len(f.varSlots),
		Stability:        stability,
		SpuriousCrashes:  f.spuriousCrashes,
		SpuriousHangs:    f.spuriousHangs,
		FilterSkips:      f.filterSkips,
		FilterFulls:      f.filterFulls,
		Timings:          f.timings,
	}
	if sat, ok := f.cov.(core.Saturable); ok {
		st.MapSaturated = sat.Saturated()
		st.DroppedKeys = sat.DroppedKeys()
	}
	return st
}

// Execs returns the number of executed test cases (cheap, for hot loops).
func (f *Fuzzer) Execs() uint64 { return f.execs }
