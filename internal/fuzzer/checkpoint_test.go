package fuzzer

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/bigmap/bigmap/internal/checkpoint"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/target"
)

// fingerprint captures everything a resumed campaign must reproduce exactly:
// progress stats (timings excluded — they are wall-clock), the full virgin
// maps, the map's slot assignments, the queue's entries and flags, crash
// buckets and both RNG streams.
type fingerprint struct {
	Stats      Stats
	VirginAll  []byte
	VirginHang []byte
	SlotKeys   []uint32
	RNG        [4]uint64
	MutRNG     [4]uint64
	Queue      []entryPrint
	CrashKeys  []uint64
}

type entryPrint struct {
	Input     string
	PathHash  uint64
	Cycles    uint64
	FoundBy   string
	Favored   bool
	WasFuzzed bool
	FuzzLevel int
}

func takeFingerprint(f *Fuzzer) fingerprint {
	st := f.Stats()
	st.Timings = Timings{}
	fp := fingerprint{
		Stats:      st,
		VirginAll:  f.virginAll.Bits(),
		VirginHang: f.virginHang.Bits(),
		RNG:        f.src.State(),
		MutRNG:     f.mut.Source().State(),
	}
	if bm, ok := f.cov.(*core.BigMap); ok {
		fp.SlotKeys = bm.SlotKeys()
	}
	for _, e := range f.queue.Entries() {
		fp.Queue = append(fp.Queue, entryPrint{
			Input:     string(e.Input),
			PathHash:  e.PathHash,
			Cycles:    e.Cycles,
			FoundBy:   e.FoundBy,
			Favored:   e.Favored,
			WasFuzzed: e.WasFuzzed,
			FuzzLevel: e.FuzzLevel,
		})
	}
	for _, r := range f.crashes.Records() {
		fp.CrashKeys = append(fp.CrashKeys, r.Key)
	}
	return fp
}

func stepN(t *testing.T, f *Fuzzer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResumeMatchesUninterrupted is the kill/resume round trip: a campaign
// checkpointed at step k and resumed through the full encode/decode codec
// must land on the exact same coverage map, virgin bits, queue, crash set and
// stats as the campaign that never stopped — across schemes, schedules,
// adaptive havoc, cmplog, calibration and fault injection.
func TestResumeMatchesUninterrupted(t *testing.T) {
	configs := map[string]Config{
		"afl-default": {
			Seed: 11, HavocRounds: 32, SpliceRounds: 8,
		},
		"bigmap-fast-adaptive": {
			Scheme: SchemeBigMap, MapSize: core.MapSize2M, Seed: 12,
			Schedule: ScheduleFast, AdaptiveHavoc: true,
			HavocRounds: 32, SpliceRounds: 8,
		},
		"bigmap-cmplog-det": {
			Scheme: SchemeBigMap, MapSize: core.MapSize2M, Seed: 13,
			EnableCmpLog: true, RunDeterministic: true, DisableTrim: true,
			HavocRounds: 16, SpliceRounds: 4,
		},
		"bigmap-calibrated-faulty": {
			Scheme: SchemeBigMap, MapSize: core.MapSize2M, Seed: 14,
			CalibrationRuns: 4, AdaptiveHavoc: true,
			HavocRounds: 32, SpliceRounds: 8,
			Faults: &target.FaultProfile{
				Seed: 3, FlakyEdgeFraction: 150, DropRate: 300,
				SpuriousCrashRate: 30, SpuriousHangRate: 30, CycleJitterPct: 15,
			},
		},
	}
	const total, cut = 8, 3
	prog := fuzzTarget(t)
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			// Uninterrupted reference.
			ref, err := New(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			seedCorpus(t, ref, prog, 3)
			stepN(t, ref, total)
			want := takeFingerprint(ref)

			// Interrupted: cut steps, full codec round trip, resume.
			a, err := New(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			seedCorpus(t, a, prog, 3)
			stepN(t, a, cut)
			data := checkpoint.EncodeFuzzer(a.Snapshot())
			st, err := checkpoint.DecodeFuzzer(data)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Resume(prog, cfg, st)
			if err != nil {
				t.Fatal(err)
			}
			// The resumed instance must already match the donor exactly.
			if got := takeFingerprint(b); !reflect.DeepEqual(got, takeFingerprint(a)) {
				t.Fatal("resumed state differs from snapshot donor before fuzzing")
			}
			stepN(t, b, total-cut)
			got := takeFingerprint(b)
			if !bytes.Equal(got.VirginAll, want.VirginAll) {
				t.Error("coverage (virgin) map diverged after resume")
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("resumed campaign diverged:\n got %+v\nwant %+v", got.Stats, want.Stats)
			}
		})
	}
}

// TestStabilityCleanTarget: on the deterministic interpreter, calibration
// finds nothing variable and stability stays at exactly 100%.
func TestStabilityCleanTarget(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 5, CalibrationRuns: 4, HavocRounds: 32, SpliceRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	stepN(t, f, 6)
	st := f.Stats()
	if st.Stability != 100 || st.VariableEdges != 0 {
		t.Errorf("clean target: stability %.2f%% with %d variable edges, want 100%% / 0",
			st.Stability, st.VariableEdges)
	}
	if st.CalibExecs == 0 {
		t.Error("calibration configured but no calibration execs recorded")
	}
}

// TestStabilityFaultyTarget: flaky edges must surface as variable edges and
// a sub-100% stability figure, and the variable-edge mask must keep flaky
// slots out of has_new_bits (the queue should not fill with re-discoveries
// of the same flickering coverage).
func TestStabilityFaultyTarget(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{
		Seed: 5, CalibrationRuns: 4, HavocRounds: 32, SpliceRounds: 4,
		Faults: &target.FaultProfile{Seed: 9, FlakyEdgeFraction: 250, DropRate: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	stepN(t, f, 6)
	st := f.Stats()
	if st.VariableEdges == 0 {
		t.Fatal("fault-injected target produced no variable edges")
	}
	if st.Stability >= 100 {
		t.Errorf("stability %.2f%% despite %d variable edges", st.Stability, st.VariableEdges)
	}
	for s := range f.varSlots {
		if f.virginAll.Bits()[s] != 0 {
			t.Fatalf("variable slot %d not suppressed in virgin map", s)
		}
	}
}

// TestSpuriousVerdictQuarantine: one-off crash/hang verdicts are verified by
// a re-run and quarantined — counted, but neither enqueued nor filed as
// crash buckets at the injected site. (A verdict that fires on the re-run
// too is indistinguishable from a real crash and rightly passes; the rate
// here is low enough that no double fire occurs at this seed.)
func TestSpuriousVerdictQuarantine(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{
		Seed: 21, CalibrationRuns: 2, HavocRounds: 64, SpliceRounds: 4,
		Faults: &target.FaultProfile{Seed: 4, SpuriousCrashRate: 12, SpuriousHangRate: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	stepN(t, f, 6)
	st := f.Stats()
	if st.SpuriousCrashes == 0 && st.SpuriousHangs == 0 {
		t.Fatal("fault profile injected verdicts but none were quarantined")
	}
	for _, r := range f.crashes.Records() {
		if r.Site == target.SpuriousCrashSite {
			t.Error("a spurious crash slipped past verification into the dedup set")
		}
	}
}

// TestBigMapSaturationGraceful: a slot-capped BigMap that runs out of dense
// slots keeps fuzzing — saturation is reported and drops are counted, but
// nothing panics and established coverage still guides the campaign.
func TestBigMapSaturationGraceful(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{
		Scheme: SchemeBigMap, MapSize: core.MapSize2M, SlotCap: 48,
		Seed: 3, HavocRounds: 32, SpliceRounds: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 3)
	stepN(t, f, 6)
	st := f.Stats()
	if !st.MapSaturated {
		t.Fatalf("map not saturated at slot cap 48 (used %d)", st.UsedKeys)
	}
	if st.UsedKeys != 48 {
		t.Errorf("used keys %d, want exactly the slot cap", st.UsedKeys)
	}
	if st.DroppedKeys == 0 {
		t.Error("saturated map recorded no dropped keys")
	}
	if st.Execs == 0 || st.Paths == 0 {
		t.Error("campaign made no progress under saturation")
	}
}

// TestResumeRejectsMismatchedConfig: a checkpoint taken under one map
// geometry must not silently load into another.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Scheme: SchemeBigMap, MapSize: core.MapSize2M, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 2)
	st := f.Snapshot()

	if _, err := Resume(prog, Config{Scheme: SchemeAFL, MapSize: core.MapSize2M}, st); err == nil {
		t.Error("scheme mismatch accepted")
	}
	if _, err := Resume(prog, Config{Scheme: SchemeBigMap, MapSize: core.MapSize8M}, st); err == nil {
		t.Error("map size mismatch accepted")
	}
}
