package fuzzer

import (
	"testing"

	"github.com/bigmap/bigmap/internal/telemetry"
)

// TestTelemetryCountersMatchStats wires a fuzzer into a registry, runs a
// short campaign and cross-checks every registry counter against the
// fuzzer's own (authoritative) bookkeeping.
func TestTelemetryCountersMatchStats(t *testing.T) {
	reg := telemetry.New()
	if reg == nil {
		t.Skip("telemetry compiled out (bigmapnotel)")
	}
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 3, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, f, prog, 4)
	if err := f.RunExecs(5000); err != nil {
		t.Fatal(err)
	}

	st := f.Stats()
	s := reg.Snapshot()
	if got := s.Counters["fuzzer_execs_total"]; got != st.Execs {
		t.Errorf("fuzzer_execs_total = %d, stats say %d", got, st.Execs)
	}
	if got := s.Counters["fuzzer_crashes_total"]; got != st.Crashes {
		t.Errorf("fuzzer_crashes_total = %d, stats say %d", got, st.Crashes)
	}
	if got := s.Counters["fuzzer_hangs_total"]; got != st.Hangs {
		t.Errorf("fuzzer_hangs_total = %d, stats say %d", got, st.Hangs)
	}
	if got := s.Gauges["fuzzer_queue_paths"]; got != int64(st.Paths) {
		t.Errorf("fuzzer_queue_paths = %d, stats say %d", got, st.Paths)
	}
	if got := s.Gauges["fuzzer_edges_discovered"]; got != int64(st.EdgesDiscovered) {
		t.Errorf("fuzzer_edges_discovered = %d, stats say %d", got, st.EdgesDiscovered)
	}
	if got := s.Histograms["fuzzer_exec_ns"].Count; got != st.Execs {
		t.Errorf("fuzzer_exec_ns count = %d, want one sample per exec (%d)", got, st.Execs)
	}
	if s.Histograms["fuzzer_stage_havoc_ns"].Count == 0 {
		t.Error("no havoc stage timings recorded")
	}
	// The coverage map was instrumented through core.Instrumented: every
	// exec resets and classify+compares.
	if s.Histograms["map_afl_reset_ns"].Count != st.Execs {
		t.Errorf("map_afl_reset_ns count = %d, want %d", s.Histograms["map_afl_reset_ns"].Count, st.Execs)
	}
	if s.Histograms["map_afl_classify_compare_ns"].Count == 0 {
		t.Error("no merged classify+compare timings recorded")
	}
}

// TestTelemetryDoesNotPerturbFuzzing runs the same seeded campaign with and
// without a registry and requires identical outcomes: observability must be
// read-only with respect to fuzzing behaviour, or resume determinism (and
// every A/B experiment) silently breaks.
func TestTelemetryDoesNotPerturbFuzzing(t *testing.T) {
	prog := fuzzTarget(t)
	run := func(reg *telemetry.Registry) Stats {
		f, err := New(prog, Config{Seed: 7, Telemetry: reg})
		if err != nil {
			t.Fatal(err)
		}
		seedCorpus(t, f, prog, 4)
		if err := f.RunExecs(4000); err != nil {
			t.Fatal(err)
		}
		return f.Stats()
	}
	bare := run(nil)
	instrumented := run(telemetry.New()) // nil under bigmapnotel: still valid

	if bare.Execs != instrumented.Execs ||
		bare.Paths != instrumented.Paths ||
		bare.EdgesDiscovered != instrumented.EdgesDiscovered ||
		bare.Crashes != instrumented.Crashes ||
		bare.UniqueCrashes != instrumented.UniqueCrashes {
		t.Errorf("telemetry perturbed the campaign:\nbare         %+v\ninstrumented %+v",
			bare, instrumented)
	}
}

// TestTelemetryNilRegistryIsFree checks the disabled wiring end to end: a
// fuzzer built without a registry must carry only nil handles, so the hot
// loop's record sites stay nil checks.
func TestTelemetryNilRegistryIsFree(t *testing.T) {
	prog := fuzzTarget(t)
	f, err := New(prog, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if f.tel.execs != nil || f.tel.execNs != nil || f.tel.stageHavoc != nil {
		t.Fatal("nil registry must produce zero telemetryHooks")
	}
	if f.Telemetry() != nil {
		t.Fatal("Telemetry() must be nil when unconfigured")
	}
	seedCorpus(t, f, prog, 2)
	if err := f.RunExecs(500); err != nil {
		t.Fatal(err)
	}
}
