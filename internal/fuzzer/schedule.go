package fuzzer

import "fmt"

// PowerSchedule selects how much mutation energy a queue entry receives per
// fuzz round — the AFLFast family (Böhme et al., the paper's reference
// [16]). The paper's approach is orthogonal to seed scheduling, so BigMap
// composes with any of these; implementing them demonstrates it and lets the
// harness measure the composition.
type PowerSchedule string

// Supported schedules. The empty value keeps AFL's plain perf-score
// behaviour with no per-execution path accounting.
const (
	// ScheduleExploit is AFL's default energy assignment (perf score only).
	ScheduleExploit PowerSchedule = "exploit"
	// ScheduleFast raises energy exponentially for rarely exercised paths
	// and decays it for over-fuzzed seeds: alpha * 2^s(i) / f(i).
	ScheduleFast PowerSchedule = "fast"
	// ScheduleExplore divides energy by the path's frequency: alpha / f(i).
	ScheduleExplore PowerSchedule = "explore"
	// ScheduleCOE skips entries on over-represented paths entirely until
	// they become rare, then behaves like fast.
	ScheduleCOE PowerSchedule = "coe"
	// ScheduleLin scales linearly with the times fuzzed: alpha * s(i)/f(i).
	ScheduleLin PowerSchedule = "lin"
	// ScheduleQuad scales quadratically: alpha * s(i)^2 / f(i).
	ScheduleQuad PowerSchedule = "quad"
)

// validSchedule reports whether s names a known schedule.
func validSchedule(s PowerSchedule) bool {
	switch s {
	case "", ScheduleExploit, ScheduleFast, ScheduleExplore, ScheduleCOE, ScheduleLin, ScheduleQuad:
		return true
	default:
		return false
	}
}

// maxEnergyFactor caps schedule multipliers, mirroring AFLFast's MAX_FACTOR.
const maxEnergyFactor = 32

// scheduleFactor computes the energy multiplier (numerator, denominator
// style folded to an int factor in [0, maxEnergyFactor]) for an entry. A
// zero factor means "skip this entry now" (COE). fuzzLevel is s(i): how many
// rounds the entry has been through; pathFreq is f(i): how many executions
// hit the entry's path.
func scheduleFactor(s PowerSchedule, fuzzLevel int, pathFreq, meanFreq uint64) int {
	if pathFreq == 0 {
		pathFreq = 1
	}
	clamp := func(v uint64) int {
		if v < 1 {
			return 1
		}
		if v > maxEnergyFactor {
			return maxEnergyFactor
		}
		return int(v)
	}
	switch s {
	case "", ScheduleExploit:
		return 1
	case ScheduleFast:
		if fuzzLevel > 16 {
			fuzzLevel = 16
		}
		return clamp((uint64(1) << uint(fuzzLevel)) / pathFreq)
	case ScheduleExplore:
		// Normalize against the mean so fresh campaigns are not starved.
		if meanFreq == 0 {
			meanFreq = 1
		}
		return clamp(meanFreq / pathFreq)
	case ScheduleCOE:
		if meanFreq > 0 && pathFreq > meanFreq {
			return 0 // over-represented path: abort the round
		}
		if fuzzLevel > 16 {
			fuzzLevel = 16
		}
		return clamp((uint64(1) << uint(fuzzLevel)) / pathFreq)
	case ScheduleLin:
		return clamp(uint64(fuzzLevel+1) * 4 / pathFreq)
	case ScheduleQuad:
		lvl := uint64(fuzzLevel + 1)
		return clamp(lvl * lvl * 4 / pathFreq)
	default:
		return 1
	}
}

// pathStats tracks per-path execution frequencies (AFLFast's n_fuzz table).
// Only maintained when a non-default schedule is configured, because it
// requires hashing the classified trace of EVERY execution.
type pathStats struct {
	freq  map[uint64]uint64
	total uint64
}

func newPathStats() *pathStats {
	return &pathStats{freq: make(map[uint64]uint64)}
}

// observe records one execution of the path with the given digest.
func (ps *pathStats) observe(hash uint64) {
	ps.freq[hash]++
	ps.total++
}

// frequency returns f(i) for a path digest.
func (ps *pathStats) frequency(hash uint64) uint64 { return ps.freq[hash] }

// mean returns the average executions per distinct path.
func (ps *pathStats) mean() uint64 {
	if len(ps.freq) == 0 {
		return 0
	}
	return ps.total / uint64(len(ps.freq))
}

// validateSchedule is called from applyDefaults.
func validateSchedule(s PowerSchedule) error {
	if !validSchedule(s) {
		return fmt.Errorf("fuzzer: unknown power schedule %q", s)
	}
	return nil
}
