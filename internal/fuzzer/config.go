package fuzzer

import (
	"errors"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/target"
	"github.com/bigmap/bigmap/internal/telemetry"
)

// Defaults mirroring AFL's config.h, scaled to the synthetic substrate.
const (
	// DefaultHavocRounds is the baseline number of havoc mutants per fuzz
	// round (AFL's HAVOC_CYCLES).
	DefaultHavocRounds = 256
	// DefaultSpliceRounds is the number of splice attempts per fuzz round
	// once the queue has at least two entries.
	DefaultSpliceRounds = 32
	// Skip probabilities from AFL: a non-favored entry is skipped with
	// probability skipToNewPct while favored entries are pending, else
	// with skipNfavOldPct (already fuzzed) or skipNfavNewPct.
	skipToNewPct   = 99
	skipNfavOldPct = 95
	skipNfavNewPct = 75
)

// ErrNoSeeds is returned when fuzzing starts with an empty queue.
var ErrNoSeeds = errors.New("fuzzer: no usable seeds in queue")

// Scheme selects the coverage map implementation.
type Scheme string

// Supported map schemes.
const (
	// SchemeAFL is the flat single-level bitmap (the baseline).
	SchemeAFL Scheme = "afl"
	// SchemeBigMap is the paper's two-level bitmap.
	SchemeBigMap Scheme = "bigmap"
)

// NewMap constructs a coverage map of the scheme.
func (s Scheme) NewMap(size int) (core.Map, error) {
	return s.NewMapSlots(size, 0)
}

// NewMapSlots constructs a coverage map with a bounded dense-slot region
// (BigMap only; slotCap <= 0 means unbounded, and the AFL scheme ignores it
// — a flat bitmap has no slot assignment to saturate).
func (s Scheme) NewMapSlots(size, slotCap int) (core.Map, error) {
	switch s {
	case SchemeAFL:
		return core.NewAFLMap(size)
	case SchemeBigMap:
		return core.NewBigMapSlots(size, slotCap)
	default:
		return nil, errors.New("fuzzer: unknown map scheme " + string(s))
	}
}

// MetricFactory builds a coverage metric sized for a map. core.NewEdgeMetric
// matched to the map size is the AFL default.
type MetricFactory func(mapSize int) (core.Metric, error)

// Config parameterizes a fuzzing instance. The zero value is completed by
// applyDefaults: 64kB AFL-scheme map, edge metric, deterministic stage
// skipped, and the merged classify+compare optimization on — the paper's
// experimental setup (§V-A1, §IV-E).
type Config struct {
	// Scheme picks the coverage map implementation.
	Scheme Scheme
	// MapSize is the coverage map size in slots (power of two).
	MapSize int
	// Metric builds the coverage metric (default: AFL edge metric).
	Metric MetricFactory
	// Seed seeds all randomness of this instance.
	Seed uint64
	// ExecBudget is the per-execution cycle budget (0 = executor default).
	ExecBudget uint64
	// ExecCostFactor simulates native target execution cost: CPU work per
	// virtual cycle after each run (0 = off). See executor.SetCostFactor.
	ExecCostFactor int
	// RunDeterministic enables AFL's deterministic stages for entries not
	// yet fuzzed. Off by default: the paper skips it for 24-hour runs, and
	// parallel mode enables it on the master only.
	RunDeterministic bool
	// SplitClassifyCompare disables the merged classify+compare traversal
	// (§IV-E) and runs the two passes separately, as vanilla AFL does.
	// Required to attribute time to the two phases separately (Figure 3).
	SplitClassifyCompare bool
	// TrackTimings records per-phase wall-clock time (Figure 3).
	TrackTimings bool
	// DisableTrim turns off AFL's test-case trimming of new queue entries.
	DisableTrim bool
	// Schedule selects the AFLFast power schedule (default: exploit, no
	// per-exec path accounting).
	Schedule PowerSchedule
	// AdaptiveHavoc enables MOpt-style operator scheduling: havoc
	// operators that produce interesting mutants are selected more often.
	AdaptiveHavoc bool
	// EnableCmpLog turns on RedQueen-style input-to-state mutation: each
	// queue entry gets one compare-collection run, and every failed
	// comparison yields a targeted mutant patching the wanted operand into
	// the input.
	EnableCmpLog bool
	// HavocRounds and SpliceRounds bound the random stages per fuzz round
	// (0 = defaults).
	HavocRounds  int
	SpliceRounds int
	// Dict is an optional token dictionary for the mutation engine.
	Dict [][]byte
	// CalibrationRuns enables AFL-style calibration and verification: new
	// queue entries are re-executed this many times in total to average
	// their cost and detect unstable ("variable") coverage slots, and
	// crash/hang verdicts are verified by one re-run before being believed
	// (one-off spurious verdicts are quarantined, not filed). 0 disables
	// both — correct for the deterministic clean interpreter, where a
	// single run is already exact.
	CalibrationRuns int
	// Faults, when non-nil, wraps the target in the fault-injecting runner
	// (see target.FaultProfile): flaky edges, spurious crash/hang verdicts
	// and cycle jitter, all deterministic in the profile seed.
	Faults *target.FaultProfile
	// SlotCap bounds BigMap's dense slot region (0 = unbounded). When the
	// target produces more distinct coverage keys than SlotCap, the map
	// saturates: excess keys are dropped and counted (Stats.DroppedKeys,
	// Stats.MapSaturated) instead of corrupting existing coverage.
	SlotCap int
	// Selective enables coverage-preserving selective tracing (the
	// "untraced fast path"): after every execution the read-only MaybeNew
	// prefilter inspects the raw trace against the status-appropriate virgin
	// map, and the full classify-and-compare traversal runs only when the
	// filter reports possibly-new coverage. The filter is exact
	// (core.Map.MaybeNew), so campaign state stays bitwise-identical to the
	// always-traced pipeline — pinned by the selffuzz differential target.
	// Incompatible with power schedules (per-exec path accounting hashes
	// every classified trace) and with CalibrationRuns (the verification
	// pipeline classifies before deciding which virgin applies).
	Selective bool
	// BatchSize, when > 1, batches the havoc stage: mutants are
	// pre-generated into a reusable arena and executed back-to-back through
	// executor.ExecuteBatch, amortizing per-execution pipeline overhead (for
	// BigMap the high-water-marked Reset folds into the loop). Campaign
	// state is bitwise-identical to the sequential stage; the mutant stream
	// and every coverage decision are unchanged. Incompatible with
	// AdaptiveHavoc (per-mutant reward feedback needs sequential
	// evaluation), power schedules, CalibrationRuns, and the Figure-3
	// attribution modes TrackTimings/SplitClassifyCompare (per-phase timing
	// requires the sequential pipeline). 0 or 1 disables batching.
	BatchSize int
	// Telemetry, when non-nil, wires the instance into the observability
	// registry: exec and per-stage timing histograms, progress counters, and
	// per-operation map timings (the coverage map is instrumented through
	// core.Instrumented). nil — the default — keeps the hot loop entirely
	// telemetry-free: record sites reduce to nil checks and no clock reads.
	Telemetry *telemetry.Registry
}

// applyDefaults fills zero fields in place and validates.
func (c *Config) applyDefaults() error {
	if c.Scheme == "" {
		c.Scheme = SchemeAFL
	}
	if c.MapSize == 0 {
		c.MapSize = core.MapSize64K
	}
	if c.Metric == nil {
		c.Metric = func(size int) (core.Metric, error) { return core.NewEdgeMetric(size) }
	}
	if c.HavocRounds == 0 {
		c.HavocRounds = DefaultHavocRounds
	}
	if c.SpliceRounds == 0 {
		c.SpliceRounds = DefaultSpliceRounds
	}
	if c.BatchSize < 0 {
		return errors.New("fuzzer: BatchSize must be >= 0")
	}
	activeSchedule := c.Schedule != "" && c.Schedule != ScheduleExploit
	if c.Selective {
		if activeSchedule {
			return errors.New("fuzzer: Selective is incompatible with power schedules (path accounting needs every trace classified)")
		}
		if c.CalibrationRuns > 0 {
			return errors.New("fuzzer: Selective is incompatible with CalibrationRuns (verification classifies before choosing a virgin map)")
		}
	}
	if c.BatchSize > 1 {
		switch {
		case c.AdaptiveHavoc:
			return errors.New("fuzzer: BatchSize > 1 is incompatible with AdaptiveHavoc (per-mutant reward feedback)")
		case activeSchedule:
			return errors.New("fuzzer: BatchSize > 1 is incompatible with power schedules")
		case c.CalibrationRuns > 0:
			return errors.New("fuzzer: BatchSize > 1 is incompatible with CalibrationRuns")
		case c.TrackTimings || c.SplitClassifyCompare:
			return errors.New("fuzzer: BatchSize > 1 is incompatible with TrackTimings/SplitClassifyCompare (per-phase attribution requires the sequential pipeline)")
		}
	}
	return validateSchedule(c.Schedule)
}
