package ensemble

import (
	"errors"
	"testing"

	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

func ensembleTarget(t *testing.T) (*target.Program, [][]byte) {
	t.Helper()
	prog, err := target.Generate(target.GenSpec{
		Name:           "ens",
		Seed:           61,
		NumFuncs:       8,
		BlocksPerFunc:  16,
		InputLen:       64,
		BranchFraction: 0.6,
		Switches:       2,
		SwitchFanout:   4,
		Loops:          2,
		LoopMax:        8,
		CrashSites:     2,
		CrashDepth:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog, prog.SampleSeeds(rng.New(62), 4)
}

func TestNewValidates(t *testing.T) {
	prog, seeds := ensembleTarget(t)
	if _, err := New(prog, Config{}, seeds); !errors.Is(err, ErrNoMembers) {
		t.Errorf("err = %v, want ErrNoMembers", err)
	}
}

func TestEnsembleRunsAllMembers(t *testing.T) {
	prog, seeds := ensembleTarget(t)
	e, err := New(prog, Config{
		Members:   DefaultMembers(),
		SyncEvery: 2000,
		Fuzzer:    fuzzer.Config{Scheme: fuzzer.SchemeBigMap, MapSize: 1 << 18, Seed: 1},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunExecs(4000); err != nil {
		t.Fatal(err)
	}
	rep := e.Report(prog)
	if len(rep.PerMember) != 3 {
		t.Fatalf("members = %d", len(rep.PerMember))
	}
	names := map[string]bool{}
	for _, m := range rep.PerMember {
		names[m.Name] = true
		if m.Stats.Execs < 4000 {
			t.Errorf("member %s execs = %d", m.Name, m.Stats.Execs)
		}
	}
	if !names["edge"] || !names["ngram3"] || !names["ctx-edge"] {
		t.Errorf("member names wrong: %v", names)
	}
	if rep.UnionExactEdges == 0 {
		t.Error("no union coverage")
	}
	if rep.TotalExecs < 12000 {
		t.Errorf("TotalExecs = %d", rep.TotalExecs)
	}
}

func TestEnsembleUnionCoverageAtLeastBestMember(t *testing.T) {
	prog, seeds := ensembleTarget(t)
	e, err := New(prog, Config{
		Members:   DefaultMembers(),
		SyncEvery: 3000,
		Fuzzer:    fuzzer.Config{Scheme: fuzzer.SchemeBigMap, MapSize: 1 << 18, Seed: 2},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunExecs(6000); err != nil {
		t.Fatal(err)
	}
	rep := e.Report(prog)

	// The union exact coverage must be at least each single member's exact
	// coverage (measure each member's corpus the same way).
	for i, f := range e.Members() {
		memberCov := exactEdges(prog, f)
		if rep.UnionExactEdges < memberCov {
			t.Errorf("union %d < member %d's %d", rep.UnionExactEdges, i, memberCov)
		}
	}
}

func TestEnsembleCrashUnion(t *testing.T) {
	prog, seeds := ensembleTarget(t)
	e, err := New(prog, Config{
		Members:   DefaultMembers(),
		SyncEvery: 10000,
		Fuzzer:    fuzzer.Config{Scheme: fuzzer.SchemeBigMap, MapSize: 1 << 18, Seed: 3},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunExecs(30000); err != nil {
		t.Fatal(err)
	}
	rep := e.Report(prog)
	best := 0
	for _, m := range rep.PerMember {
		if m.Stats.UniqueCrashes > best {
			best = m.Stats.UniqueCrashes
		}
	}
	if rep.UniqueCrashes < best {
		t.Errorf("crash union %d < best member %d", rep.UniqueCrashes, best)
	}
}

func TestSingleMemberEnsemble(t *testing.T) {
	prog, seeds := ensembleTarget(t)
	e, err := New(prog, Config{
		Members:   DefaultMembers()[:1],
		SyncEvery: 1000,
		Fuzzer:    fuzzer.Config{Seed: 4},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunExecs(1000); err != nil {
		t.Fatal(err)
	}
	if got := e.Report(prog).TotalExecs; got < 1000 {
		t.Errorf("TotalExecs = %d", got)
	}
}
