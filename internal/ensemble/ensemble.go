// Package ensemble implements ensemble fuzzing — the paper's §VI names the
// BigMap-vs-ensemble comparison as an open avenue for future research, and
// this package makes the experiment runnable.
//
// An ensemble runs several fuzzing instances with *different* coverage
// metrics (edge, N-gram, context-sensitive, ...) and periodically
// cross-pollinates their corpora (Wang et al., RAID'19; EnFuzz-style). The
// alternative the paper advocates is *stacking*: one instance whose single
// metric composes the signals (e.g. laf-intel + N-gram) on one big BigMap.
// Ensembles keep each map small but split the exec budget and rely on
// syncing; stacking concentrates the budget but multiplies map pressure —
// which is exactly the trade BigMap was built to unlock.
package ensemble

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/covreport"
	"github.com/bigmap/bigmap/internal/crash"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// ErrNoMembers is returned when an ensemble has no member configurations.
var ErrNoMembers = errors.New("ensemble: need at least one member")

// Member is one ensemble slot: a named coverage metric driving its own
// fuzzing instance.
type Member struct {
	// Name labels the member in reports ("edge", "ngram3", ...).
	Name string
	// Metric builds the member's coverage metric.
	Metric fuzzer.MetricFactory
}

// DefaultMembers is the classic heterogeneous trio: plain edges, 3-gram
// partial paths, and context-sensitive edges.
func DefaultMembers() []Member {
	return []Member{
		{Name: "edge", Metric: func(size int) (core.Metric, error) { return core.NewEdgeMetric(size) }},
		{Name: "ngram3", Metric: func(size int) (core.Metric, error) { return core.NewNGramMetric(size, 3) }},
		{Name: "ctx-edge", Metric: func(size int) (core.Metric, error) { return core.NewContextMetric(size) }},
	}
}

// Config parameterizes an ensemble campaign.
type Config struct {
	// Members are the heterogeneous instances.
	Members []Member
	// SyncEvery is each member's exec budget per round (0 = 20,000).
	SyncEvery uint64
	// Fuzzer is the per-member template (Scheme, MapSize, Seed...). The
	// Metric field is overridden per member.
	Fuzzer fuzzer.Config
}

// Ensemble is a running heterogeneous campaign.
type Ensemble struct {
	members  []Member
	fuzzers  []*fuzzer.Fuzzer
	cfg      Config
	seenUpTo [][]int
}

// New builds the member instances and dry-runs the shared seeds on each.
func New(prog *target.Program, cfg Config, seeds [][]byte) (*Ensemble, error) {
	if len(cfg.Members) == 0 {
		return nil, ErrNoMembers
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 20000
	}
	fuzzers := make([]*fuzzer.Fuzzer, len(cfg.Members))
	for i, m := range cfg.Members {
		fcfg := cfg.Fuzzer
		fcfg.Metric = m.Metric
		fcfg.Seed = fcfg.Seed*37 + uint64(i) + 1
		f, err := fuzzer.New(prog, fcfg)
		if err != nil {
			return nil, fmt.Errorf("member %s: %w", m.Name, err)
		}
		accepted := 0
		for _, s := range seeds {
			if err := f.AddSeed(s); err == nil {
				accepted++
			}
		}
		if accepted == 0 {
			return nil, fmt.Errorf("member %s: %w", m.Name, fuzzer.ErrNoSeeds)
		}
		fuzzers[i] = f
	}
	seen := make([][]int, len(fuzzers))
	for i := range seen {
		seen[i] = make([]int, len(fuzzers))
		for j := range seen[i] {
			seen[i][j] = fuzzers[j].Queue().Len()
		}
	}
	return &Ensemble{members: cfg.Members, fuzzers: fuzzers, cfg: cfg, seenUpTo: seen}, nil
}

// RunExecs fuzzes until every member has executed at least perMember test
// cases, cross-pollinating between rounds. Members run concurrently within
// a round.
func (e *Ensemble) RunExecs(perMember uint64) error {
	for !e.allReached(perMember) {
		if err := e.round(); err != nil {
			return err
		}
		e.sync()
	}
	return nil
}

// RunFor fuzzes for roughly d of wall-clock time.
func (e *Ensemble) RunFor(d time.Duration) error {
	deadline := time.Now().Add(d)     //bigmap:nondeterministic-ok wall-clock API by contract
	for time.Now().Before(deadline) { //bigmap:nondeterministic-ok wall-clock API by contract
		if err := e.round(); err != nil {
			return err
		}
		e.sync()
	}
	return nil
}

func (e *Ensemble) round() error {
	errs := make([]error, len(e.fuzzers))
	var wg sync.WaitGroup
	for i, f := range e.fuzzers {
		wg.Add(1)
		go func(i int, f *fuzzer.Fuzzer) {
			defer wg.Done()
			errs[i] = f.RunExecs(e.cfg.SyncEvery)
		}(i, f)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// sync cross-pollinates new finds between members. A find interesting under
// one metric is re-judged under each peer's own metric, as ensemble fuzzers
// do when importing from a shared corpus.
func (e *Ensemble) sync() {
	if len(e.fuzzers) < 2 {
		return
	}
	snapshots := make([][][]byte, len(e.fuzzers))
	for j, f := range e.fuzzers {
		entries := f.Queue().Entries()
		inputs := make([][]byte, len(entries))
		for k, entry := range entries {
			inputs[k] = entry.Input
		}
		snapshots[j] = inputs
	}
	for i, f := range e.fuzzers {
		for j := range e.fuzzers {
			if i == j {
				continue
			}
			inputs := snapshots[j]
			for k := e.seenUpTo[i][j]; k < len(inputs); k++ {
				f.ImportInput(inputs[k])
			}
			e.seenUpTo[i][j] = len(inputs)
		}
	}
}

func (e *Ensemble) allReached(perMember uint64) bool {
	for _, f := range e.fuzzers {
		if f.Execs() < perMember {
			return false
		}
	}
	return true
}

// Members returns the per-member fuzzers, index-aligned with the configured
// members.
func (e *Ensemble) Members() []*fuzzer.Fuzzer { return e.fuzzers }

// Report aggregates the ensemble's outcome. Because members count coverage
// in different key spaces, the union coverage is measured with the bias-free
// exact coverage build over the combined corpus (§V-A3 methodology).
type Report struct {
	// TotalExecs sums executions across members.
	TotalExecs uint64
	// PerMember pairs member names with their stats.
	PerMember []MemberStats
	// UnionExactEdges is the exact-edge coverage of all corpora combined.
	UnionExactEdges int
	// UniqueCrashes is the Crashwalk union across members.
	UniqueCrashes int
}

// MemberStats is one member's contribution.
type MemberStats struct {
	Name  string
	Stats fuzzer.Stats
}

// Report measures the ensemble. prog must be the campaign's target (needed
// for the exact coverage replay).
func (e *Ensemble) Report(prog *target.Program) Report {
	rep := Report{}
	union := crash.NewDeduper()
	cov := covreport.New(prog, 0)
	for i, f := range e.fuzzers {
		st := f.Stats()
		rep.PerMember = append(rep.PerMember, MemberStats{Name: e.members[i].Name, Stats: st})
		rep.TotalExecs += st.Execs
		union.Merge(f.Crashes())
		for _, entry := range f.Queue().Entries() {
			cov.Add(entry.Input)
		}
	}
	rep.UnionExactEdges = cov.Edges()
	rep.UniqueCrashes = union.Unique()
	return rep
}
