package ensemble

import (
	"github.com/bigmap/bigmap/internal/covreport"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/target"
)

// exactEdges measures one member's corpus with the bias-free coverage
// build.
func exactEdges(prog *target.Program, f *fuzzer.Fuzzer) int {
	cov := covreport.New(prog, 0)
	for _, e := range f.Queue().Entries() {
		cov.Add(e.Input)
	}
	return cov.Edges()
}
