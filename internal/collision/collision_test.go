package collision

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/bigmap/bigmap/internal/rng"
)

func TestRateRejectsBadArgs(t *testing.T) {
	for _, args := range [][2]int{{0, 5}, {5, 0}, {-1, 5}, {5, -1}} {
		if _, err := Rate(args[0], args[1]); !errors.Is(err, ErrBadArgs) {
			t.Errorf("Rate(%d,%d) err = %v, want ErrBadArgs", args[0], args[1], err)
		}
	}
}

func TestRateKnownValues(t *testing.T) {
	tests := []struct {
		name string
		h, n int
		want float64
		tol  float64
	}{
		// n=1 can never collide.
		{"single-draw", 65536, 1, 0, 1e-12},
		// The paper's Table II: sqlite3 has ~40,948 discovered edges and a
		// reported 25.64% collision rate on a 64kB map.
		{"sqlite3-64k", 65536, 40948, 0.2564, 0.005},
		// zlib: 722 edges, 0.55%.
		{"zlib-64k", 65536, 722, 0.0055, 0.0005},
		// instcombine: 131,677 edges, 56.90%.
		{"instcombine-64k", 65536, 131677, 0.5690, 0.005},
		// php: 20,260 edges, 13.98%.
		{"php-64k", 65536, 20260, 0.1398, 0.002},
		// Large map drives the rate toward zero.
		{"instcombine-8M", 8 << 20, 131677, 0.0078, 0.001},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Rate(tt.h, tt.n)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("Rate(%d,%d) = %.4f, want %.4f +/- %.4f", tt.h, tt.n, got, tt.want, tt.tol)
			}
		})
	}
}

func TestRateMonotoneInN(t *testing.T) {
	prev := -1.0
	for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
		got, err := Rate(65536, n)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Fatalf("rate decreased as n grew: %v at n=%d", got, n)
		}
		prev = got
	}
}

func TestRateMonotoneDecreasingInH(t *testing.T) {
	prev := 2.0
	for _, h := range []int{1 << 16, 1 << 18, 1 << 21, 1 << 23, 1 << 25} {
		got, err := Rate(h, 50000)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev {
			t.Fatalf("rate increased as H grew: %v at H=%d", got, h)
		}
		prev = got
	}
}

func TestRateBounds(t *testing.T) {
	property := func(h16, n16 uint16) bool {
		h := int(h16) + 1
		n := int(n16) + 1
		r, err := Rate(h, n)
		if err != nil {
			return false
		}
		return r >= 0 && r < 1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBirthdayParagraphFromPaper(t *testing.T) {
	// §III: "the probability of having at least one collision is ~50% after
	// assigning only 300 IDs" to a 64k map.
	p, err := BirthdayProbability(65536, 300)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.45 || p > 0.55 {
		t.Errorf("BirthdayProbability(64k, 300) = %.3f, want ~0.50", p)
	}

	n, err := KeysForProbability(65536, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n < 280 || n > 330 {
		t.Errorf("KeysForProbability(64k, 0.5) = %d, want ~300", n)
	}
}

func TestBirthdayPigeonhole(t *testing.T) {
	p, err := BirthdayProbability(10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("n > H must guarantee a collision, got %v", p)
	}
}

func TestMeasurePaperExample(t *testing.T) {
	// §II-B: keys {4, 2, 5, 3, 2} have collision rate 1/5 (not 2/5).
	got := Measure([]uint32{4, 2, 5, 3, 2})
	if got != 0.2 {
		t.Errorf("Measure = %v, want 0.2", got)
	}
}

func TestMeasureEdgeCases(t *testing.T) {
	if got := Measure(nil); got != 0 {
		t.Errorf("Measure(nil) = %v", got)
	}
	if got := Measure([]uint32{7}); got != 0 {
		t.Errorf("Measure(single) = %v", got)
	}
	if got := Measure([]uint32{7, 7, 7, 7}); got != 0.75 {
		t.Errorf("Measure(all same) = %v, want 0.75", got)
	}
}

func TestEmpiricalMatchesAnalytical(t *testing.T) {
	// Drawing uniformly at random, the measured rate should approach Eq. 1.
	src := rng.New(1234)
	const h, n = 4096, 8192
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(src.Intn(h))
	}
	want, err := Rate(h, n)
	if err != nil {
		t.Fatal(err)
	}
	got := Measure(keys)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("empirical %.4f vs analytical %.4f differ by > 0.02", got, want)
	}
}

// TestCollidingBoundaries is the table-driven boundary sweep of the
// adversarial key generator: every (size, n, distinct) combination — including
// degenerate 1-slot maps, exact-fit distinct==size, and requests larger than
// the space — must produce exactly n in-range keys with exactly the clamped
// number of distinct values, and always include the boundary slots 0 and
// size-1 once there is room for them.
func TestCollidingBoundaries(t *testing.T) {
	tests := []struct {
		name         string
		size, n      int
		distinct     int
		wantDistinct int
	}{
		{"one-slot-map", 1, 10, 5, 1},
		{"two-slot-map", 2, 16, 2, 2},
		{"distinct-clamped-to-size", 8, 100, 999, 8},
		{"distinct-clamped-to-n", 1 << 16, 4, 100, 4},
		{"distinct-zero-clamped-up", 64, 8, 0, 1},
		{"exact-fit", 16, 16, 16, 16},
		{"map-64k", 1 << 16, 1000, 300, 300},
		{"map-8M", 8 << 20, 500, 64, 64},
		{"non-power-of-two-space", 1000, 128, 40, 40},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			keys := Colliding(tc.size, tc.n, tc.distinct, 42)
			if len(keys) != tc.n {
				t.Fatalf("got %d keys, want %d", len(keys), tc.n)
			}
			seen := map[uint32]struct{}{}
			for _, k := range keys {
				if int(k) >= tc.size {
					t.Fatalf("key %d out of range for size %d", k, tc.size)
				}
				seen[k] = struct{}{}
			}
			if len(seen) > tc.wantDistinct {
				t.Fatalf("got %d distinct values, want <= %d", len(seen), tc.wantDistinct)
			}
			// The drawn values come from a pool of exactly wantDistinct keys;
			// with n >= 4*pool every pool member should be hit with
			// overwhelming probability, but the hard guarantee is only the
			// upper bound checked above. Pin the boundary-slot bias instead:
			// pools of >= 2 keys always contain slots 0 and size-1.
			if tc.wantDistinct >= 2 && tc.n >= 4*tc.wantDistinct {
				if _, ok := seen[0]; !ok {
					t.Error("boundary slot 0 never drawn")
				}
				if _, ok := seen[uint32(tc.size-1)]; !ok {
					t.Errorf("boundary slot %d never drawn", tc.size-1)
				}
			}
		})
	}
}

// TestCollidingDegenerate pins the nil returns.
func TestCollidingDegenerate(t *testing.T) {
	if got := Colliding(0, 10, 5, 1); got != nil {
		t.Errorf("size 0: got %v, want nil", got)
	}
	if got := Colliding(64, 0, 5, 1); got != nil {
		t.Errorf("n 0: got %v, want nil", got)
	}
	if got := Colliding(-3, 10, 5, 1); got != nil {
		t.Errorf("negative size: got %v, want nil", got)
	}
}

// TestCollidingDeterministic: same arguments, same sequence — required by the
// selffuzz corpus replays.
func TestCollidingDeterministic(t *testing.T) {
	a := Colliding(1<<16, 256, 32, 7)
	b := Colliding(1<<16, 256, 32, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := Colliding(1<<16, 256, 32, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

// TestCollidingMeasuredRate: a sequence with distinct << n must measure a
// high empirical collision rate — the generator's whole purpose.
func TestCollidingMeasuredRate(t *testing.T) {
	keys := Colliding(1<<16, 1000, 10, 3)
	if rate := Measure(keys); rate < 0.9 {
		t.Errorf("collision rate %.3f, want >= 0.9 (1000 draws over 10 values)", rate)
	}
}
