// Package collision quantifies hash-collision severity in coverage bitmaps,
// implementing the paper's collision-rate metric (§II-B, Equation 1), the
// birthday-problem probability used in §III, and empirical measurement of
// collision rates from concrete key assignments.
package collision

import (
	"errors"
	"math"
)

// ErrBadArgs is returned when a hash-space size or draw count is not
// positive.
var ErrBadArgs = errors.New("collision: hash space and draw count must be positive")

// Rate evaluates Equation 1 of the paper: the expected fraction of n keys
// drawn uniformly from a hash space of size h that match a previously drawn
// key,
//
//	CollisionRate(H, n) = 1 - (H/n) * (1 - ((H-1)/H)^n).
//
// The expected number of distinct values among n uniform draws is
// H*(1-((H-1)/H)^n); every draw beyond the distinct ones is a collision.
func Rate(h, n int) (float64, error) {
	if h <= 0 || n <= 0 {
		return 0, ErrBadArgs
	}
	hf, nf := float64(h), float64(n)
	// ((H-1)/H)^n computed via Exp/Log1p for numerical stability when H is
	// large and n is small (direct Pow loses precision in (H-1)/H).
	p := math.Exp(nf * math.Log1p(-1/hf))
	rate := 1 - hf/nf*(1-p)
	// Clamp tiny negative values produced by floating-point cancellation.
	if rate < 0 {
		rate = 0
	}
	return rate, nil
}

// BirthdayProbability returns the probability that at least one collision
// occurs when n keys are drawn uniformly from a hash space of size h. This is
// the classic birthday bound the paper invokes to show a 64kB map reaches
// ~50% collision probability after only ~300 assigned IDs.
func BirthdayProbability(h, n int) (float64, error) {
	if h <= 0 || n <= 0 {
		return 0, ErrBadArgs
	}
	if n > h {
		return 1, nil // pigeonhole
	}
	// log P(no collision) = sum_{i=1}^{n-1} log(1 - i/H)
	logNone := 0.0
	hf := float64(h)
	for i := 1; i < n; i++ {
		logNone += math.Log1p(-float64(i) / hf)
	}
	return 1 - math.Exp(logNone), nil
}

// KeysForProbability returns the smallest number of uniform draws from a hash
// space of size h at which the collision probability reaches p (0 < p < 1).
func KeysForProbability(h int, p float64) (int, error) {
	if h <= 0 || p <= 0 || p >= 1 {
		return 0, ErrBadArgs
	}
	logNone := 0.0
	hf := float64(h)
	target := math.Log(1 - p)
	for n := 1; n <= h; n++ {
		logNone += math.Log1p(-float64(n-1) / hf)
		if logNone <= target {
			return n, nil
		}
	}
	return h + 1, nil
}

// Measure computes the empirical collision rate of a concrete key sequence
// using the paper's definition: a draw collides if its key matches any
// previously drawn key; the rate is collisions / draws. The example in §II-B
// ({4,2,5,3,2} -> 1/5) is reproduced by the tests.
func Measure(keys []uint32) float64 {
	if len(keys) == 0 {
		return 0
	}
	seen := make(map[uint32]struct{}, len(keys))
	collisions := 0
	for _, k := range keys {
		if _, ok := seen[k]; ok {
			collisions++
		} else {
			seen[k] = struct{}{}
		}
	}
	return float64(collisions) / float64(len(keys))
}

// MeasureDistinct computes the empirical collision rate of assigning n
// distinct entities (e.g. static edges) to keys: entities beyond the first
// occupant of each key are counted as colliding. keys must contain one entry
// per entity.
func MeasureDistinct(keys []uint32) float64 {
	return Measure(keys)
}

// Colliding generates an adversarial key sequence for a coverage map of the
// given hash-space size: n keys drawn from only `distinct` values, so every
// draw past the first sight of each value collides. distinct is clamped to
// [1, min(n, size)]. The values themselves concentrate on the map's boundary
// slots (0, size-1, and the power-of-two midpoints), the indices where masking
// and word-level kernel bugs live. The sequence is deterministic in seed via
// a splitmix64 walk, so fuzz targets replaying a corpus see identical keys.
func Colliding(size, n, distinct int, seed uint64) []uint32 {
	if size <= 0 || n <= 0 {
		return nil
	}
	if distinct < 1 {
		distinct = 1
	}
	if distinct > n {
		distinct = n
	}
	if distinct > size {
		distinct = size
	}
	vals := boundaryKeys(size, distinct, seed)
	out := make([]uint32, n)
	x := seed ^ 0x9e3779b97f4a7c15
	for i := range out {
		x = splitmix64(x)
		out[i] = vals[int(x%uint64(len(vals)))]
	}
	return out
}

// boundaryKeys returns `want` distinct keys < size biased toward the slots
// where map implementations break: 0, size-1, and the ±1 neighbourhoods of
// every power-of-two ≤ size. Remaining keys are filled from a deterministic
// pseudo-random walk over the full space.
func boundaryKeys(size, want int, seed uint64) []uint32 {
	if want > size {
		want = size
	}
	seen := make(map[uint32]struct{}, want)
	out := make([]uint32, 0, want)
	add := func(k int) {
		if k < 0 || k >= size || len(out) >= want {
			return
		}
		kk := uint32(k)
		if _, ok := seen[kk]; ok {
			return
		}
		seen[kk] = struct{}{}
		out = append(out, kk)
	}
	add(0)
	add(size - 1)
	for p := 1; p <= size; p <<= 1 {
		add(p - 1)
		add(p)
		add(p + 1)
		if p > size/2 {
			break
		}
	}
	x := seed
	for len(out) < want {
		x = splitmix64(x)
		add(int(x % uint64(size)))
	}
	return out
}

// splitmix64 is the SplitMix64 mixing function — a tiny, dependency-free
// deterministic generator good enough for adversarial key synthesis.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
