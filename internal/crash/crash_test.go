package crash

import (
	"testing"
	"testing/quick"
)

func TestKeyOfDistinguishesSites(t *testing.T) {
	stack := []uint32{1, 2, 3}
	if KeyOf(10, stack) == KeyOf(11, stack) {
		t.Error("different faulting sites bucketed together")
	}
}

func TestKeyOfDistinguishesStacks(t *testing.T) {
	if KeyOf(10, []uint32{1, 2}) == KeyOf(10, []uint32{2, 1}) {
		t.Error("stack order ignored")
	}
	if KeyOf(10, []uint32{1, 2}) == KeyOf(10, []uint32{1, 2, 3}) {
		t.Error("stack depth ignored")
	}
}

func TestKeyOfSeparatorPreventsAliasing(t *testing.T) {
	// (stack=[1,2], site=3) must not alias (stack=[1,2,3], site=3) etc.
	if KeyOf(3, []uint32{1, 2}) == KeyOf(3, []uint32{1, 2, 3}) {
		t.Error("separator failed")
	}
}

func TestKeyOfDeterministic(t *testing.T) {
	property := func(site uint32, stack []uint32) bool {
		return KeyOf(site, stack) == KeyOf(site, stack)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}

func TestDeduperObserve(t *testing.T) {
	d := NewDeduper()
	if !d.Observe(1, []uint32{5}, []byte("in1")) {
		t.Fatal("first observation not new")
	}
	if d.Observe(1, []uint32{5}, []byte("in2")) {
		t.Fatal("duplicate observation reported as new")
	}
	if !d.Observe(1, []uint32{6}, []byte("in3")) {
		t.Fatal("different stack not new")
	}
	if d.Unique() != 2 {
		t.Errorf("Unique = %d, want 2", d.Unique())
	}
	if d.Total() != 3 {
		t.Errorf("Total = %d, want 3", d.Total())
	}
}

func TestDeduperKeepsFirstInput(t *testing.T) {
	d := NewDeduper()
	in := []byte("first")
	d.Observe(1, nil, in)
	in[0] = 'X' // caller mutates its buffer afterwards
	recs := d.Records()
	if len(recs) != 1 || string(recs[0].Input) != "first" {
		t.Errorf("stored input = %q, want copy of original", recs[0].Input)
	}
	d.Observe(1, nil, []byte("second"))
	if string(d.Records()[0].Input) != "first" {
		t.Error("duplicate observation replaced the stored input")
	}
}

func TestRecordsSortedAndComplete(t *testing.T) {
	d := NewDeduper()
	for i := uint32(0); i < 20; i++ {
		d.Observe(i, []uint32{i % 3}, nil)
	}
	recs := d.Records()
	if len(recs) != 20 {
		t.Fatalf("got %d records, want 20", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Key >= recs[i].Key {
			t.Fatal("records not sorted by key")
		}
	}
}

func TestMerge(t *testing.T) {
	a := NewDeduper()
	b := NewDeduper()
	a.Observe(1, nil, nil)
	a.Observe(2, nil, nil)
	b.Observe(2, nil, nil)
	b.Observe(3, nil, nil)

	added := a.Merge(b)
	if added != 1 {
		t.Errorf("Merge added %d buckets, want 1", added)
	}
	if a.Unique() != 3 {
		t.Errorf("Unique after merge = %d, want 3", a.Unique())
	}
	// The shared bucket's count should accumulate.
	total := a.Total()
	if total != 4 {
		t.Errorf("Total after merge = %d, want 4", total)
	}
	// Merge must not alias records between dedupers.
	b.Observe(3, nil, nil)
	if a.Total() != 4 {
		t.Error("merge aliased records across dedupers")
	}
}
