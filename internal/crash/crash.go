// Package crash deduplicates crashes. The paper (§V-A3) avoids AFL's
// coverage-based crash dedup for its evaluation because the global
// crash-coverage bitmap makes it "inherently biased towards larger maps",
// and uses Crashwalk instead: a crash is unique if the hash of its call
// stack and faulting address is new. This package implements that bucketing
// over the synthetic target's crash reports, plus a counter-style record for
// triage output.
package crash

import "sort"

// KeyOf buckets a crash by faulting site and call stack, Crashwalk style.
// The hash is order-sensitive: the same site reached through different call
// chains is a different bucket.
func KeyOf(site uint32, stack []uint32) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint32) {
		h ^= uint64(v)
		h *= 0x100000001b3
	}
	for _, s := range stack {
		mix(s)
	}
	mix(0xdead) // separator so (stack..., site) cannot alias (stack, site...)
	mix(site)
	return h
}

// Record describes one unique crash bucket.
type Record struct {
	// Key is the dedup hash.
	Key uint64
	// Site is the faulting block ID.
	Site uint32
	// StackDepth is the call-stack depth at the crash.
	StackDepth int
	// Count is how many crashing executions fell into this bucket.
	Count int
	// Input is the first input that produced the bucket.
	Input []byte
}

// Deduper accumulates crash observations. Not safe for concurrent use.
type Deduper struct {
	seen map[uint64]*Record
}

// NewDeduper creates an empty deduper.
func NewDeduper() *Deduper {
	return &Deduper{seen: make(map[uint64]*Record)}
}

// Observe records a crash and reports whether its bucket is new. The input
// is copied only for new buckets.
func (d *Deduper) Observe(site uint32, stack []uint32, input []byte) bool {
	key := KeyOf(site, stack)
	if rec, ok := d.seen[key]; ok {
		rec.Count++
		return false
	}
	in := make([]byte, len(input)) //bigmap:alloc-ok crash path: input is copied once per new crash bucket, never on clean runs
	copy(in, input)
	d.seen[key] = &Record{ //bigmap:alloc-ok crash path: one record per new crash bucket, never on clean runs
		Key:        key,
		Site:       site,
		StackDepth: len(stack),
		Count:      1,
		Input:      in,
	}
	return true
}

// Unique returns the number of distinct crash buckets.
func (d *Deduper) Unique() int { return len(d.seen) }

// Total returns the total number of crashing executions observed.
func (d *Deduper) Total() int {
	n := 0
	for _, rec := range d.seen {
		n += rec.Count
	}
	return n
}

// Records returns the buckets sorted by key for deterministic reporting.
func (d *Deduper) Records() []*Record {
	out := make([]*Record, 0, len(d.seen))
	for _, rec := range d.seen {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Restore reloads buckets from a checkpoint into an empty-or-not deduper.
// Existing buckets with the same key are replaced; records and their inputs
// are copied, so the caller may reuse the slice.
func (d *Deduper) Restore(recs []Record) {
	for i := range recs {
		cp := recs[i]
		cp.Input = append([]byte(nil), recs[i].Input...)
		d.seen[cp.Key] = &cp
	}
}

// Merge folds another deduper's buckets into this one (used when
// aggregating parallel instances). Returns the number of buckets that were
// new to the receiver.
func (d *Deduper) Merge(other *Deduper) int {
	added := 0
	for key, rec := range other.seen {
		if mine, ok := d.seen[key]; ok {
			mine.Count += rec.Count
			continue
		}
		cp := *rec
		d.seen[key] = &cp
		added++
	}
	return added
}
