package dictionary

import (
	"fmt"
	"sort"

	"github.com/bigmap/bigmap/internal/target"
)

// Extract statically harvests comparison operands from a target program as
// dictionary tokens — the synthetic equivalent of grepping a binary for
// magic values and keywords when building an AFL dictionary. Multi-byte
// comparison constants become multi-byte tokens (little-endian, as the
// interpreter compares them); switch-case values and crash-guard bytes are
// left out, mirroring how real dictionaries capture format magics rather
// than every literal.
//
// Tokens are deduplicated and sorted for determinism.
func Extract(prog *target.Program) []Token {
	seen := make(map[string]bool)
	var tokens []Token
	for fi := range prog.Funcs {
		for bi := range prog.Funcs[fi].Blocks {
			nd := &prog.Funcs[fi].Blocks[bi].Node
			if nd.Kind != target.KindCompareWord {
				continue
			}
			data := make([]byte, nd.Width)
			for w := 0; w < nd.Width; w++ {
				data[w] = byte(nd.Val >> (8 * w))
			}
			key := string(data)
			if seen[key] {
				continue
			}
			seen[key] = true
			tokens = append(tokens, Token{
				Name: fmt.Sprintf("magic_f%d_b%d", fi, bi),
				Data: data,
			})
		}
	}
	sort.Slice(tokens, func(i, j int) bool {
		return string(tokens[i].Data) < string(tokens[j].Data)
	})
	return tokens
}
