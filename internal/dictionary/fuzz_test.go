package dictionary

import (
	"strings"
	"testing"
)

// FuzzParse asserts the dictionary parser never panics on arbitrary input
// and that accepted dictionaries round-trip through Format.
func FuzzParse(f *testing.F) {
	f.Add(`magic="\x89PNG"`)
	f.Add(`a@3="b"` + "\n" + `"bare"`)
	f.Add(`broken="`)
	f.Add("# just a comment\n\n")
	f.Add(`x="\q"`)

	f.Fuzz(func(t *testing.T, content string) {
		tokens, err := Parse(content, 1<<30)
		if err != nil {
			return // rejections are fine; panics are not
		}
		for _, tok := range tokens {
			if len(tok.Data) == 0 {
				t.Fatal("accepted an empty token")
			}
			if len(tok.Data) > maxTokenLen {
				t.Fatalf("accepted an oversized token (%d bytes)", len(tok.Data))
			}
		}
		// Round trip: formatting and re-parsing preserves every payload.
		again, err := Parse(Format(tokens), 1<<30)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v", err)
		}
		if len(again) != len(tokens) {
			t.Fatalf("round trip changed token count: %d -> %d", len(tokens), len(again))
		}
		for i := range tokens {
			if string(again[i].Data) != string(tokens[i].Data) {
				t.Fatalf("token %d payload changed: %q -> %q", i, tokens[i].Data, again[i].Data)
			}
		}
	})
}

// FuzzUnquote asserts the escape decoder never panics and never reads past
// the closing quote.
func FuzzUnquote(f *testing.F) {
	f.Add(`abc"rest`)
	f.Add(`\\\"\x41"tail`)
	f.Add(`noquote`)
	f.Fuzz(func(t *testing.T, s string) {
		data, rest, err := unquote(s)
		if err != nil {
			return
		}
		if !strings.HasSuffix(s, rest) {
			t.Fatal("rest is not a suffix of the input")
		}
		_ = data
	})
}
