// Package dictionary parses AFL-style dictionary files (`-x` option) and
// extracts tokens automatically from targets. Dictionary tokens feed the
// mutation engine's dictionary stages, helping the fuzzer through magic
// values and keywords.
//
// The file format follows AFL's dictionaries/README: one token per line,
//
//	name="value"        # optional name, quoted value
//	name@level="value"  # optional level gating (tokens above -L are skipped)
//	"bare value"        # name is optional
//
// with \\, \" and \xNN escapes inside the quotes. Blank lines and #-comment
// lines are ignored.
package dictionary

import (
	"fmt"
	"strconv"
	"strings"
)

// maxTokenLen mirrors AFL's MAX_DICT_FILE sanity bound for one token.
const maxTokenLen = 128

// Token is one dictionary entry.
type Token struct {
	// Name labels the token (may be empty for bare values).
	Name string
	// Level gates the token: tokens with Level above the load threshold
	// are skipped, as with AFL's -x file@level syntax.
	Level int
	// Data is the token payload.
	Data []byte
}

// Parse reads an AFL dictionary. maxLevel filters tokens whose level
// exceeds it (pass a large value to keep everything).
func Parse(content string, maxLevel int) ([]Token, error) {
	var tokens []Token
	for lineNo, raw := range strings.Split(content, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tok, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("dictionary: line %d: %w", lineNo+1, err)
		}
		if tok.Level > maxLevel {
			continue
		}
		tokens = append(tokens, tok)
	}
	return tokens, nil
}

// parseLine parses one `name@level="value"` entry.
func parseLine(line string) (Token, error) {
	var tok Token

	quote := strings.IndexByte(line, '"')
	if quote < 0 {
		return tok, fmt.Errorf("missing opening quote in %q", line)
	}
	head := strings.TrimSpace(line[:quote])
	if head != "" {
		head = strings.TrimSuffix(head, "=")
		if at := strings.IndexByte(head, '@'); at >= 0 {
			lvl, err := strconv.Atoi(strings.TrimSpace(head[at+1:]))
			if err != nil {
				return tok, fmt.Errorf("bad level in %q: %w", head, err)
			}
			tok.Level = lvl
			head = head[:at]
		}
		tok.Name = strings.TrimSpace(head)
	}

	body := line[quote+1:]
	data, rest, err := unquote(body)
	if err != nil {
		return tok, err
	}
	if strings.TrimSpace(rest) != "" {
		return tok, fmt.Errorf("trailing garbage %q", rest)
	}
	if len(data) == 0 {
		return tok, fmt.Errorf("empty token")
	}
	if len(data) > maxTokenLen {
		return tok, fmt.Errorf("token of %d bytes exceeds the %d-byte limit", len(data), maxTokenLen)
	}
	tok.Data = data
	return tok, nil
}

// unquote decodes the quoted value with AFL's escape rules, returning the
// decoded bytes and anything after the closing quote.
func unquote(s string) ([]byte, string, error) {
	var out []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '"':
			return out, s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return nil, "", fmt.Errorf("dangling backslash")
			}
			i++
			switch s[i] {
			case '\\':
				out = append(out, '\\')
			case '"':
				out = append(out, '"')
			case 'x':
				if i+2 >= len(s) {
					return nil, "", fmt.Errorf("truncated \\x escape")
				}
				v, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
				if err != nil {
					return nil, "", fmt.Errorf("bad \\x escape: %w", err)
				}
				out = append(out, byte(v))
				i += 2
			default:
				return nil, "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
		default:
			out = append(out, c)
		}
	}
	return nil, "", fmt.Errorf("missing closing quote")
}

// Data extracts just the payloads, the shape the mutation engine consumes.
func Data(tokens []Token) [][]byte {
	out := make([][]byte, 0, len(tokens))
	for _, t := range tokens {
		out = append(out, t.Data)
	}
	return out
}

// Format renders tokens back into the AFL dictionary format.
func Format(tokens []Token) string {
	var b strings.Builder
	for _, t := range tokens {
		if t.Name != "" {
			b.WriteString(t.Name)
			if t.Level != 0 {
				fmt.Fprintf(&b, "@%d", t.Level)
			}
			b.WriteString("=")
		}
		b.WriteByte('"')
		for _, c := range t.Data {
			switch {
			case c == '"':
				b.WriteString(`\"`)
			case c == '\\':
				b.WriteString(`\\`)
			case c >= 32 && c < 127:
				b.WriteByte(c)
			default:
				fmt.Fprintf(&b, `\x%02x`, c)
			}
		}
		b.WriteString("\"\n")
	}
	return b.String()
}
