package dictionary

import (
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
)

// newTestFuzzer builds a BigMap fuzzer with an optional dictionary.
func newTestFuzzer(prog *target.Program, dict [][]byte) (*fuzzer.Fuzzer, error) {
	return fuzzer.New(prog, fuzzer.Config{
		Scheme:  fuzzer.SchemeBigMap,
		MapSize: 1 << 18,
		Seed:    9,
		Dict:    dict,
	})
}

// testRng returns a fixed-seed source for seed synthesis.
func testRng() *rng.Source { return rng.New(101) }
