package dictionary

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bigmap/bigmap/internal/target"
)

func TestParseBasicForms(t *testing.T) {
	content := `
# AFL-style dictionary
header_png="\x89PNG"
keyword="SELECT"
"bare token"
deep@2="rarely useful"
`
	tokens, err := Parse(content, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 4 {
		t.Fatalf("parsed %d tokens, want 4", len(tokens))
	}
	if tokens[0].Name != "header_png" || !bytes.Equal(tokens[0].Data, []byte("\x89PNG")) {
		t.Errorf("token 0 = %+v", tokens[0])
	}
	if tokens[1].Name != "keyword" || string(tokens[1].Data) != "SELECT" {
		t.Errorf("token 1 = %+v", tokens[1])
	}
	if tokens[2].Name != "" || string(tokens[2].Data) != "bare token" {
		t.Errorf("token 2 = %+v", tokens[2])
	}
	if tokens[3].Level != 2 {
		t.Errorf("token 3 level = %d", tokens[3].Level)
	}
}

func TestParseLevelFilter(t *testing.T) {
	content := `shallow="a"
deep@5="b"`
	tokens, err := Parse(content, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 1 || tokens[0].Name != "shallow" {
		t.Errorf("level filter broken: %+v", tokens)
	}
}

func TestParseEscapes(t *testing.T) {
	tokens, err := Parse(`esc="a\\b\"c\x00d"`, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{'a', '\\', 'b', '"', 'c', 0, 'd'}
	if !bytes.Equal(tokens[0].Data, want) {
		t.Errorf("data = %v, want %v", tokens[0].Data, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`noquote`,
		`x="unterminated`,
		`x="bad escape \q"`,
		`x="trunc \x1"`,
		`x=""`,
		`x="ok" garbage`,
		`x@zzz="ok"`,
		`long="` + strings.Repeat("A", 200) + `"`,
	}
	for _, content := range bad {
		if _, err := Parse(content, 10); err == nil {
			t.Errorf("accepted %q", content)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig := []Token{
		{Name: "magic", Data: []byte{0x89, 'P', 'N', 'G'}},
		{Name: "lvl", Level: 3, Data: []byte("plain")},
		{Data: []byte(`quote " and \ slash`)},
	}
	parsed, err := Parse(Format(orig), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(orig) {
		t.Fatalf("round trip lost tokens: %d vs %d", len(parsed), len(orig))
	}
	for i := range orig {
		if !bytes.Equal(parsed[i].Data, orig[i].Data) {
			t.Errorf("token %d data = %v, want %v", i, parsed[i].Data, orig[i].Data)
		}
		if parsed[i].Level != orig[i].Level {
			t.Errorf("token %d level = %d, want %d", i, parsed[i].Level, orig[i].Level)
		}
	}
}

func TestDataProjection(t *testing.T) {
	tokens := []Token{{Data: []byte("a")}, {Data: []byte("bb")}}
	data := Data(tokens)
	if len(data) != 2 || string(data[1]) != "bb" {
		t.Errorf("Data = %q", data)
	}
}

func TestExtractHarvestsMagicValues(t *testing.T) {
	prog, err := target.Generate(target.GenSpec{
		Name:          "dict",
		Seed:          77,
		NumFuncs:      3,
		BlocksPerFunc: 10,
		InputLen:      64,
		MagicCompares: 5,
		MagicWidth:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tokens := Extract(prog)
	if len(tokens) < 5 {
		t.Fatalf("extracted %d tokens, want >= 5", len(tokens))
	}
	for _, tok := range tokens {
		if len(tok.Data) != 4 {
			t.Errorf("token %s has %d bytes, want 4", tok.Name, len(tok.Data))
		}
	}
	// Deterministic and sorted.
	again := Extract(prog)
	if len(again) != len(tokens) {
		t.Fatal("extract not deterministic")
	}
	for i := range tokens {
		if !bytes.Equal(tokens[i].Data, again[i].Data) {
			t.Fatal("extract order unstable")
		}
	}
}

// TestExtractedDictionaryHelpsFuzzing demonstrates the point of dictionaries:
// with harvested magic tokens, the fuzzer unlocks gated regions that plain
// havoc practically never matches.
func TestExtractedDictionaryHelpsFuzzing(t *testing.T) {
	prog, err := target.Generate(target.GenSpec{
		Name:          "dictfuzz",
		Seed:          78,
		NumFuncs:      4,
		BlocksPerFunc: 12,
		InputLen:      48,
		MagicCompares: 6,
		MagicWidth:    4,
		BonusBlocks:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	edges := func(dict [][]byte) int {
		f, err := newTestFuzzer(prog, dict)
		if err != nil {
			t.Fatal(err)
		}
		seeds := prog.SampleSeeds(testRng(), 4)
		ok := 0
		for _, s := range seeds {
			if err := f.AddSeed(s); err == nil {
				ok++
			}
		}
		if ok == 0 {
			t.Fatal("no seeds")
		}
		if err := f.RunExecs(30000); err != nil {
			t.Fatal(err)
		}
		return f.Stats().EdgesDiscovered
	}

	without := edges(nil)
	with := edges(Data(Extract(prog)))
	if with <= without {
		t.Errorf("dictionary did not help: %d edges with vs %d without", with, without)
	}
}
