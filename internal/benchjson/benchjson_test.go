package benchjson

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/bigmap/bigmap/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkClassifyKernel/scalar/bigmap/2M-8         	    1219	   1003885 ns/op	       0 B/op	       0 allocs/op
BenchmarkClassifyKernel/word/bigmap/8M-8           	     609	   1974000 ns/op	       0 B/op	       0 allocs/op
BenchmarkExecLoop/afl/64k-8                        	   80000	     14813 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig2CollisionRate-8                       	     100	    500000 ns/op
PASS
ok  	github.com/bigmap/bigmap/internal/core	4.2s
`

func TestParseGoBench(t *testing.T) {
	rep, err := ParseGoBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Errorf("schema %q, want %q", rep.Schema, Schema)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("preamble not captured: %q %q %q", rep.GoOS, rep.GoArch, rep.CPU)
	}
	if len(rep.Records) != 4 {
		t.Fatalf("got %d records, want 4", len(rep.Records))
	}

	r := rep.Find("BenchmarkClassifyKernel/word/bigmap/8M")
	if r == nil {
		t.Fatal("word/8M record missing (GOMAXPROCS suffix not stripped?)")
	}
	if r.Op != "ClassifyKernel" || r.Variant != "word" || r.Scheme != "bigmap" || r.MapSize != "8M" {
		t.Errorf("labels not derived: %+v", r)
	}
	if r.NsPerOp != 1974000 || r.AllocsPerOp != 0 || r.BytesPerOp != 0 || r.Iterations != 609 {
		t.Errorf("measurements wrong: %+v", r)
	}

	exec := rep.Find("BenchmarkExecLoop/afl/64k")
	if exec == nil || exec.Scheme != "afl" || exec.MapSize != "64k" || exec.Variant != "" {
		t.Errorf("exec-loop labels wrong: %+v", exec)
	}

	// A record without -benchmem must distinguish "not measured" from zero.
	fig2 := rep.Find("BenchmarkFig2CollisionRate")
	if fig2 == nil || fig2.AllocsPerOp != -1 || fig2.BytesPerOp != -1 {
		t.Errorf("missing -benchmem should report -1: %+v", fig2)
	}
}

func TestParseGoBenchEmptyInputFails(t *testing.T) {
	if _, err := ParseGoBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Error("want error for input with no benchmark lines")
	}
}

func TestReportRoundTripsThroughJSON(t *testing.T) {
	rep, err := ParseGoBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	rep.Tables = append(rep.Tables, FromTable(
		"Figure 3", []string{"note"}, []string{"op", "ns"}, [][]string{{"classify", "42"}}))
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(back.Records) != len(rep.Records) || len(back.Tables) != 1 {
		t.Errorf("round trip lost data: %d records, %d tables", len(back.Records), len(back.Tables))
	}
	if back.Tables[0].Rows[0][1] != "42" {
		t.Errorf("table payload lost: %+v", back.Tables[0])
	}
}

func TestFromTableCopies(t *testing.T) {
	rows := [][]string{{"a", "b"}}
	tab := FromTable("t", nil, []string{"h"}, rows)
	rows[0][0] = "mutated"
	if tab.Rows[0][0] != "a" {
		t.Error("FromTable aliases caller rows")
	}
}

func TestSplitNameVariants(t *testing.T) {
	cases := []struct {
		name                      string
		op, variant, scheme, size string
	}{
		{"BenchmarkAddBatchKernel/addbatch/bigmap/8M", "AddBatchKernel", "addbatch", "bigmap", "8M"},
		{"BenchmarkFig3MapOps/classify/afl/64k", "Fig3MapOps", "classify", "afl", "64k"},
		{"BenchmarkHashKernel/word/bigmap/2M", "HashKernel", "word", "bigmap", "2M"},
		{"BenchmarkFig8CrashDedup", "Fig8CrashDedup", "", "", ""},
	}
	for _, c := range cases {
		op, variant, scheme, size := splitName(c.name)
		if op != c.op || variant != c.variant || scheme != c.scheme || size != c.size {
			t.Errorf("splitName(%q) = %q %q %q %q, want %q %q %q %q",
				c.name, op, variant, scheme, size, c.op, c.variant, c.scheme, c.size)
		}
	}
}
