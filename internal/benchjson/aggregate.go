package benchjson

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// AggregateTables folds N repeats of the same experiment table into one:
// label cells must agree verbatim across repeats, numeric cells are replaced
// by their mean — annotated with ±stddev (sample standard deviation) when
// there is more than one repeat and the spread survives rounding. The
// single-repeat case is a verbatim pass-through (copy, no ±0 noise), which is
// what keeps a repeats=1 grid byte-identical to the raw driver output.
//
// A cell is numeric when it parses as a float after splitting off a trailing
// unit suffix ("2.50x", "25.64%"); the suffix must agree across repeats and
// is re-attached to the mean. Output precision is the widest decimal count
// observed among the inputs for that cell.
func AggregateTables(tables []TableJSON) (TableJSON, error) {
	if len(tables) == 0 {
		return TableJSON{}, fmt.Errorf("%w: aggregating zero tables", ErrSchema)
	}
	first := tables[0]
	if len(tables) == 1 {
		return FromTable(first.Title, first.Notes, first.Header, first.Rows), nil
	}
	for i, t := range tables[1:] {
		if t.Title != first.Title {
			return TableJSON{}, fmt.Errorf("%w: repeat %d titled %q, want %q", ErrSchema, i+1, t.Title, first.Title)
		}
		if !sameStrings(t.Header, first.Header) {
			return TableJSON{}, fmt.Errorf("%w: repeat %d of %q changed the header", ErrSchema, i+1, first.Title)
		}
		if len(t.Rows) != len(first.Rows) {
			return TableJSON{}, fmt.Errorf("%w: repeat %d of %q has %d rows, want %d",
				ErrSchema, i+1, first.Title, len(t.Rows), len(first.Rows))
		}
	}
	out := FromTable(first.Title, first.Notes, first.Header, first.Rows)
	for ri := range first.Rows {
		for ci := range first.Rows[ri] {
			cell, err := foldCell(tables, ri, ci)
			if err != nil {
				return TableJSON{}, fmt.Errorf("%w: table %q row %d col %d: %v",
					ErrSchema, first.Title, ri, ci, err)
			}
			out.Rows[ri][ci] = cell
		}
	}
	return out, nil
}

// foldCell merges one cell position across all repeats.
func foldCell(tables []TableJSON, ri, ci int) (string, error) {
	vals := make([]float64, 0, len(tables))
	decimals := 0
	suffix := ""
	identical := true
	for ti, t := range tables {
		if ri >= len(t.Rows) || ci >= len(t.Rows[ri]) {
			return "", fmt.Errorf("repeat %d is missing the cell", ti)
		}
		cell := t.Rows[ri][ci]
		if cell != tables[0].Rows[ri][ci] {
			identical = false
		}
		num, sfx, dec, ok := splitNumeric(cell)
		if !ok {
			if cell != tables[0].Rows[ri][ci] {
				return "", fmt.Errorf("non-numeric cell %q differs across repeats (first repeat: %q)",
					cell, tables[0].Rows[ri][ci])
			}
			continue
		}
		if ti > 0 && len(vals) == 0 {
			// Earlier repeats were non-numeric for this position.
			return "", fmt.Errorf("cell %q is numeric in repeat %d but not earlier", cell, ti)
		}
		if len(vals) > 0 && sfx != suffix {
			return "", fmt.Errorf("unit suffix changed across repeats: %q vs %q", sfx, suffix)
		}
		suffix = sfx
		if dec > decimals {
			decimals = dec
		}
		vals = append(vals, num)
	}
	if len(vals) == 0 || identical {
		return tables[0].Rows[ri][ci], nil
	}
	if len(vals) != len(tables) {
		return "", fmt.Errorf("cell is numeric in %d of %d repeats", len(vals), len(tables))
	}
	mean, sd := meanStddev(vals)
	cell := strconv.FormatFloat(mean, 'f', decimals, 64)
	if rounded := strconv.FormatFloat(sd, 'f', decimals, 64); !allZero(rounded) {
		cell += "±" + rounded
	}
	return cell + suffix, nil
}

// splitNumeric splits "25.64%" into (25.64, "%", 2, true). The numeric part
// must be a plain decimal (no exponent); the suffix is whatever follows it,
// at most 2 characters ("x", "%", "k", "M", "ms"...). Pure labels return
// ok=false.
func splitNumeric(s string) (val float64, suffix string, decimals int, ok bool) {
	if s == "" {
		return 0, "", 0, false
	}
	end := 0
	for end < len(s) && (s[end] == '-' || s[end] == '+' || s[end] == '.' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	if end == 0 || len(s)-end > 2 {
		return 0, "", 0, false
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0, "", 0, false
	}
	if i := strings.IndexByte(s[:end], '.'); i >= 0 {
		decimals = end - i - 1
	}
	return v, s[end:], decimals, true
}

// meanStddev returns the mean and the sample standard deviation (n-1 in the
// denominator; 0 for a single value).
func meanStddev(vals []float64) (mean, sd float64) {
	n := float64(len(vals))
	for _, v := range vals {
		mean += v
	}
	mean /= n
	if len(vals) < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / (n - 1))
}

// allZero reports whether a formatted number is zero ("0", "0.00").
func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' && s[i] != '.' {
			return false
		}
	}
	return true
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
