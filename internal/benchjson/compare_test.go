package benchjson

import (
	"strings"
	"testing"
)

func report(pairs ...any) *Report {
	r := &Report{Schema: Schema}
	for i := 0; i < len(pairs); i += 2 {
		r.Records = append(r.Records, Record{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return r
}

func TestCompare(t *testing.T) {
	old := report(
		"BenchmarkExecLoop/bigmap/64k", 2500.0,
		"BenchmarkExecLoop/afl/8M", 2400000.0,
		"BenchmarkGone", 10.0,
	)
	new := report(
		"BenchmarkExecLoop/bigmap/64k", 2000.0, // improved
		"BenchmarkExecLoop/afl/8M", 3400000.0, // +41%: regressed
		"BenchmarkExecLoopSelective/bigmap/64k", 1900.0, // new: ignored
	)
	deltas := Compare(old, new, 0.30)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2 (shared names only): %+v", len(deltas), deltas)
	}
	// Sorted by name: afl/8M first.
	if !deltas[0].Regressed || deltas[1].Regressed {
		t.Fatalf("regression flags wrong: %+v", deltas)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Name != "BenchmarkExecLoop/afl/8M" {
		t.Fatalf("Regressions = %+v", regs)
	}
	if s := FormatDelta(deltas[1]); !strings.Contains(s, "-20.0%") {
		t.Fatalf("FormatDelta = %q, want -20.0%% improvement", s)
	}
}

func TestCompareTolerance(t *testing.T) {
	old := report("BenchmarkX", 100.0)
	// +25% passes at 0.30, fails at 0.20.
	new := report("BenchmarkX", 125.0)
	if regs := Regressions(Compare(old, new, 0.30)); len(regs) != 0 {
		t.Fatalf("+25%% regressed at tolerance 0.30: %+v", regs)
	}
	if regs := Regressions(Compare(old, new, 0.20)); len(regs) != 1 {
		t.Fatal("+25% not flagged at tolerance 0.20")
	}
}

func TestReadReportRejectsForeignSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := ReadReport(strings.NewReader(`{"schema":"` + Schema + `","records":[]}`)); err != nil {
		t.Fatal(err)
	}
}
