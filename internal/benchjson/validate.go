package benchjson

import (
	"errors"
	"fmt"
	"strings"
)

// ErrSchema wraps every validation failure so callers (the grid runner, the
// CI results-smoke job) can distinguish "this artifact drifted from the
// schema" from I/O problems.
var ErrSchema = errors.New("benchjson: schema violation")

// Validate checks a report against the bigmap-bench/v1 schema contract:
// the schema string must match, the report must carry at least one record or
// table, every record needs a name and a positive iteration count, and every
// table must be rectangular (each row exactly as wide as its header) with a
// title and a non-empty header. This is what "fails on schema drift" means
// mechanically: an experiment driver that renames, widens or empties a table
// breaks Validate before any artifact is written.
func Validate(r *Report) error {
	if r == nil {
		return fmt.Errorf("%w: nil report", ErrSchema)
	}
	if r.Schema != Schema {
		return fmt.Errorf("%w: schema %q, want %q", ErrSchema, r.Schema, Schema)
	}
	if len(r.Records) == 0 && len(r.Tables) == 0 {
		return fmt.Errorf("%w: report carries no records and no tables", ErrSchema)
	}
	for i, rec := range r.Records {
		if rec.Name == "" {
			return fmt.Errorf("%w: record %d has no name", ErrSchema, i)
		}
		if rec.Iterations <= 0 {
			return fmt.Errorf("%w: record %q has iterations %d", ErrSchema, rec.Name, rec.Iterations)
		}
		if rec.NsPerOp < 0 {
			return fmt.Errorf("%w: record %q has negative ns/op", ErrSchema, rec.Name)
		}
	}
	for i := range r.Tables {
		if err := ValidateTable(&r.Tables[i]); err != nil {
			return fmt.Errorf("table %d: %w", i, err)
		}
	}
	return nil
}

// ValidateTable checks one table for the rectangularity contract.
func ValidateTable(t *TableJSON) error {
	if t.Title == "" {
		return fmt.Errorf("%w: table has no title", ErrSchema)
	}
	if len(t.Header) == 0 {
		return fmt.Errorf("%w: table %q has an empty header", ErrSchema, t.Title)
	}
	for i, h := range t.Header {
		if strings.TrimSpace(h) == "" {
			return fmt.Errorf("%w: table %q header column %d is blank", ErrSchema, t.Title, i)
		}
	}
	if len(t.Rows) == 0 {
		return fmt.Errorf("%w: table %q has no rows", ErrSchema, t.Title)
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Header) {
			return fmt.Errorf("%w: table %q row %d has %d cells for %d columns",
				ErrSchema, t.Title, i, len(row), len(t.Header))
		}
	}
	return nil
}
