// Package benchjson turns benchmark results into one machine-readable JSON
// artifact. It has two producers feeding the same schema: a parser for the
// text `go test -bench -benchmem` emits (the kernel and exec-loop
// microbenchmarks behind BENCH_2.json), and a converter for the experiment
// tables cmd/bigmap-bench renders — so CI, the Makefile's bench target and
// the paper-artifact runner all speak one format a regression checker can
// diff across commits.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Schema identifies the report layout; bump on incompatible changes.
const Schema = "bigmap-bench/v1"

// Record is one sub-benchmark measurement. The repo's benchmarks name
// themselves Benchmark<Op>/<variant>/<scheme>/<size> (or a prefix of that),
// and the parser lifts those path components into typed fields so consumers
// can select "BigMap classify+compare at 8M" without re-parsing names.
type Record struct {
	// Name is the full benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkClassifyKernel/word/bigmap/8M".
	Name string `json:"name"`
	// Op is the benchmark function name without the Benchmark prefix.
	Op string `json:"op"`
	// Variant, Scheme and MapSize are derived from the sub-benchmark path
	// when recognizable ("scalar"/"word"/"add"/..., "afl"/"bigmap",
	// "64k"/"2M"/"8M"); empty otherwise.
	Variant string `json:"variant,omitempty"`
	Scheme  string `json:"scheme,omitempty"`
	MapSize string `json:"map_size,omitempty"`
	// Iterations is the benchmark's N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp mirror -benchmem; -1 when the run did not
	// report them (so "0 allocs/op" is distinguishable from "not measured").
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// TableJSON is one cmd/bigmap-bench experiment table in JSON form.
type TableJSON struct {
	Title  string     `json:"title"`
	Notes  []string   `json:"notes,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// Report is the top-level artifact (BENCH_2.json).
type Report struct {
	Schema string `json:"schema"`
	// GoOS/GoArch/CPU are taken from the go test preamble when parsing
	// bench output; empty when the report holds only tables.
	GoOS    string      `json:"goos,omitempty"`
	GoArch  string      `json:"goarch,omitempty"`
	CPU     string      `json:"cpu,omitempty"`
	Records []Record    `json:"records,omitempty"`
	Tables  []TableJSON `json:"tables,omitempty"`
}

// FromTable converts a rendered experiment table. It copies the payload so
// later mutation of the source table does not alias into the report.
func FromTable(title string, notes, header []string, rows [][]string) TableJSON {
	t := TableJSON{
		Title:  title,
		Notes:  append([]string(nil), notes...),
		Header: append([]string(nil), header...),
		Rows:   make([][]string, len(rows)),
	}
	for i, r := range rows {
		t.Rows[i] = append([]string(nil), r...)
	}
	return t
}

// ParseGoBench reads `go test -bench` text output and returns a Report with
// one Record per result line. Lines that are not benchmark results (PASS,
// ok, progress output interleaved by other tooling) are ignored, so the
// parser can consume a whole test run verbatim.
func ParseGoBench(r io.Reader) (*Report, error) {
	rep := &Report{Schema: Schema}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			rec, ok, err := parseResultLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Records = append(rep.Records, rec)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Records) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark result lines in input")
	}
	return rep, nil
}

// parseResultLine parses one "BenchmarkName-8  N  ns/op ..." line. ok is
// false for benchmark banner lines that carry no measurements (a name with
// no fields, as `go test -v` prints before running).
func parseResultLine(line string) (Record, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Record{}, false, nil
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix from the final path element.
	if i := strings.LastIndexByte(name, '-'); i > strings.LastIndexByte(name, '/') {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
	}
	rec := Record{
		Name:        name,
		Iterations:  iters,
		BytesPerOp:  -1,
		AllocsPerOp: -1,
	}
	rec.Op, rec.Variant, rec.Scheme, rec.MapSize = splitName(name)
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if rec.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Record{}, false, fmt.Errorf("benchjson: bad ns/op in %q: %v", line, err)
			}
		case "B/op":
			if rec.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Record{}, false, fmt.Errorf("benchjson: bad B/op in %q: %v", line, err)
			}
		case "allocs/op":
			if rec.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Record{}, false, fmt.Errorf("benchjson: bad allocs/op in %q: %v", line, err)
			}
		}
	}
	if rec.NsPerOp == 0 && rec.Iterations == 0 {
		return Record{}, false, nil
	}
	return rec, true, nil
}

// splitName derives typed labels from a benchmark path: the Benchmark-less
// function name, then per path component a scheme ("afl"/"bigmap"), a map
// size (digits + k/M), or — first unclaimed component — a variant label.
func splitName(name string) (op, variant, scheme, size string) {
	parts := strings.Split(name, "/")
	op = strings.TrimPrefix(parts[0], "Benchmark")
	for _, p := range parts[1:] {
		switch {
		case p == "afl" || p == "bigmap":
			scheme = p
		case isSizeLabel(p):
			size = p
		case variant == "":
			variant = p
		}
	}
	return op, variant, scheme, size
}

// isSizeLabel reports whether s looks like the repo's map-size labels
// (64k, 256k, 2M, 8M).
func isSizeLabel(s string) bool {
	if len(s) < 2 {
		return false
	}
	last := s[len(s)-1]
	if last != 'k' && last != 'M' {
		return false
	}
	for _, r := range s[:len(s)-1] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Write emits the report as indented JSON with a trailing newline.
func (r *Report) Write(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadReport decodes a report and checks its schema tag, so a consumer
// (the benchcmp regression gate) fails loudly on a stale or foreign file
// rather than silently comparing nothing.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("benchjson: schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// Find returns the first record whose name matches exactly, or nil.
func (r *Report) Find(name string) *Record {
	for i := range r.Records {
		if r.Records[i].Name == name {
			return &r.Records[i]
		}
	}
	return nil
}
