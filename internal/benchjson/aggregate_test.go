package benchjson

import (
	"errors"
	"reflect"
	"testing"
)

func sampleTable(cells ...string) TableJSON {
	return TableJSON{
		Title:  "Figure X: sample",
		Header: []string{"benchmark", "map", "edges"},
		Rows:   [][]string{append([]string{"gvn", "64k"}, cells...)},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	rep := &Report{
		Schema:  Schema,
		Records: []Record{{Name: "BenchmarkX", Iterations: 10, NsPerOp: 5}},
		Tables:  []TableJSON{sampleTable("12")},
	}
	if err := Validate(rep); err != nil {
		t.Fatalf("well-formed report rejected: %v", err)
	}
}

// TestValidateEdgeCases is the table-driven "empty grid" sweep: every way an
// artifact can be hollow or ragged must be rejected with ErrSchema.
func TestValidateEdgeCases(t *testing.T) {
	ragged := sampleTable("12")
	ragged.Rows = append(ragged.Rows, []string{"too", "narrow"})
	noTitle := sampleTable("12")
	noTitle.Title = ""
	noHeader := sampleTable("12")
	noHeader.Header = nil
	blankCol := sampleTable("12")
	blankCol.Header = []string{"benchmark", "  ", "edges"}
	noRows := sampleTable("12")
	noRows.Rows = nil

	tests := []struct {
		name string
		rep  *Report
	}{
		{"nil report", nil},
		{"wrong schema", &Report{Schema: "bogus/v9", Tables: []TableJSON{sampleTable("1")}}},
		{"empty grid", &Report{Schema: Schema}},
		{"record without name", &Report{Schema: Schema, Records: []Record{{Iterations: 1}}}},
		{"record zero iterations", &Report{Schema: Schema, Records: []Record{{Name: "B", Iterations: 0}}}},
		{"record negative ns", &Report{Schema: Schema, Records: []Record{{Name: "B", Iterations: 1, NsPerOp: -1}}}},
		{"ragged table", &Report{Schema: Schema, Tables: []TableJSON{ragged}}},
		{"untitled table", &Report{Schema: Schema, Tables: []TableJSON{noTitle}}},
		{"headerless table", &Report{Schema: Schema, Tables: []TableJSON{noHeader}}},
		{"blank header column", &Report{Schema: Schema, Tables: []TableJSON{blankCol}}},
		{"rowless table", &Report{Schema: Schema, Tables: []TableJSON{noRows}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := Validate(tc.rep); !errors.Is(err, ErrSchema) {
				t.Fatalf("got %v, want ErrSchema", err)
			}
		})
	}
}

// TestAggregateSingleRepeat: one repeat passes through verbatim — no ±0
// annotations, no reformatting. This is the "single-repeat stddev" edge: the
// stddev is undefined at n=1 and must not leak into the artifact.
func TestAggregateSingleRepeat(t *testing.T) {
	in := sampleTable("12.50")
	got, err := AggregateTables([]TableJSON{in})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("single repeat not a pass-through: %+v vs %+v", got, in)
	}
	// And the copy must not alias the input.
	got.Rows[0][0] = "mutated"
	if in.Rows[0][0] == "mutated" {
		t.Fatal("aggregate aliases the input table")
	}
}

func TestAggregateMeanAndStddev(t *testing.T) {
	got, err := AggregateTables([]TableJSON{
		sampleTable("10"), sampleTable("12"), sampleTable("14"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := "12±2"; got.Rows[0][2] != want {
		t.Fatalf("mean cell = %q, want %q", got.Rows[0][2], want)
	}
}

func TestAggregateSuffixAndDecimals(t *testing.T) {
	got, err := AggregateTables([]TableJSON{
		sampleTable("1.00x"), sampleTable("3.00x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := "2.00±1.41x"; got.Rows[0][2] != want {
		t.Fatalf("suffixed cell = %q, want %q", got.Rows[0][2], want)
	}
}

func TestAggregateIdenticalNumericPassThrough(t *testing.T) {
	got, err := AggregateTables([]TableJSON{sampleTable("64"), sampleTable("64")})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][2] != "64" {
		t.Fatalf("identical numeric cell reformatted to %q", got.Rows[0][2])
	}
}

func TestAggregateZeroSpreadOmitsStddev(t *testing.T) {
	// Different strings, same value: zero spread, no ± annotation, and the
	// output adopts the widest decimal count seen.
	got, err := AggregateTables([]TableJSON{sampleTable("12"), sampleTable("12.0")})
	if err != nil {
		t.Fatal(err)
	}
	if want := "12.0"; got.Rows[0][2] != want {
		t.Fatalf("cell = %q, want %q (zero spread omits ±)", got.Rows[0][2], want)
	}
}

func TestAggregateRejectsMismatches(t *testing.T) {
	base := sampleTable("10")
	retitled := sampleTable("10")
	retitled.Title = "renamed"
	reheaded := sampleTable("10")
	reheaded.Header = []string{"benchmark", "map", "paths"}
	extraRow := sampleTable("10")
	extraRow.Rows = append(extraRow.Rows, []string{"licm", "2M", "5"})
	labelFlip := sampleTable("10")
	labelFlip.Rows[0][0] = "licm"

	tests := []struct {
		name string
		in   []TableJSON
	}{
		{"zero tables", nil},
		{"title drift", []TableJSON{base, retitled}},
		{"header drift", []TableJSON{base, reheaded}},
		{"row count drift", []TableJSON{base, extraRow}},
		{"label drift", []TableJSON{base, labelFlip}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := AggregateTables(tc.in); !errors.Is(err, ErrSchema) {
				t.Fatalf("got %v, want ErrSchema", err)
			}
		})
	}
}

func TestSplitNumeric(t *testing.T) {
	tests := []struct {
		in       string
		val      float64
		suffix   string
		decimals int
		ok       bool
	}{
		{"12", 12, "", 0, true},
		{"-3.50", -3.5, "", 2, true},
		{"25.64%", 25.64, "%", 2, true},
		{"2.50x", 2.5, "x", 2, true},
		{"64k", 64, "k", 0, true},
		{"gvn", 0, "", 0, false},
		{"", 0, "", 0, false},
		{"v1.2.3", 0, "", 0, false},
		{"merged", 0, "", 0, false},
	}
	for _, tc := range tests {
		val, suffix, dec, ok := splitNumeric(tc.in)
		if ok != tc.ok || (ok && (val != tc.val || suffix != tc.suffix || dec != tc.decimals)) {
			t.Errorf("splitNumeric(%q) = (%v,%q,%d,%v), want (%v,%q,%d,%v)",
				tc.in, val, suffix, dec, ok, tc.val, tc.suffix, tc.decimals, tc.ok)
		}
	}
}
