package benchjson

import (
	"fmt"
	"sort"
)

// Delta is one benchmark present in both reports under comparison.
type Delta struct {
	Name    string
	OldNs   float64
	NewNs   float64
	// Ratio is NewNs/OldNs: 1.0 unchanged, <1 faster, >1 slower.
	Ratio float64
	// Regressed marks ratios beyond the comparison's tolerance.
	Regressed bool
}

// Compare matches records by full benchmark name across two reports and
// flags regressions: a shared benchmark whose new ns/op exceeds the old by
// more than tolerance (0.25 = +25%). Only shared names participate — a
// baseline generated before a benchmark existed cannot gate it — and the
// caller decides whether an empty intersection is an error. Results are
// sorted by name for stable output. Both reports should come from the same
// machine: cross-host ns/op comparisons are noise, which is why the repo
// checks in BENCH_*.json artifacts generated together and CI diffs those
// rather than re-timing on shared runners.
func Compare(old, new *Report, tolerance float64) []Delta {
	base := make(map[string]float64, len(old.Records))
	for _, r := range old.Records {
		base[r.Name] = r.NsPerOp
	}
	var deltas []Delta
	for _, r := range new.Records {
		oldNs, ok := base[r.Name]
		if !ok || oldNs <= 0 {
			continue
		}
		ratio := r.NsPerOp / oldNs
		deltas = append(deltas, Delta{
			Name:      r.Name,
			OldNs:     oldNs,
			NewNs:     r.NsPerOp,
			Ratio:     ratio,
			Regressed: ratio > 1+tolerance,
		})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// Regressions filters a comparison down to the failing entries.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// FormatDelta renders one comparison line, benchcmp-style.
func FormatDelta(d Delta) string {
	return fmt.Sprintf("%-60s %12.1f %12.1f %+7.1f%%", d.Name, d.OldNs, d.NewNs, (d.Ratio-1)*100)
}
