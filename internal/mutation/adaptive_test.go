package mutation

import (
	"testing"

	"github.com/bigmap/bigmap/internal/rng"
)

func TestAdaptiveDisabledByDefault(t *testing.T) {
	m := New(rng.New(1), nil)
	if m.AdaptiveEnabled() {
		t.Error("adaptive on by default")
	}
	m.RewardLast(true) // must be a safe no-op
	if used, _ := m.OperatorStats(); used != nil {
		t.Error("stats exist without adaptive mode")
	}
}

func TestAdaptiveTracksUsage(t *testing.T) {
	m := New(rng.New(2), [][]byte{[]byte("tok")})
	m.EnableAdaptive()
	base := make([]byte, 64)
	for i := 0; i < 200; i++ {
		m.Havoc(base)
		m.RewardLast(i%3 == 0)
	}
	used, success := m.OperatorStats()
	var totalUsed, totalSuccess uint64
	for i := range used {
		totalUsed += used[i]
		totalSuccess += success[i]
		if success[i] > used[i] {
			t.Fatalf("op %d: success %d > used %d", i, success[i], used[i])
		}
	}
	if totalUsed == 0 {
		t.Fatal("no operator usage recorded")
	}
	if totalSuccess == 0 {
		t.Fatal("no successes credited")
	}
}

func TestAdaptiveBiasesTowardSuccessfulOps(t *testing.T) {
	m := New(rng.New(3), nil)
	m.EnableAdaptive()
	base := make([]byte, 64)

	// Phase 1: reward only mutants whose stack used operator 0 at least
	// once (simulating "bit flips are what works on this target").
	for i := 0; i < 3000; i++ {
		m.Havoc(base)
		hit := false
		for _, op := range m.adaptive.lastOps {
			if op == 0 {
				hit = true
				break
			}
		}
		m.RewardLast(hit)
	}
	used, _ := m.OperatorStats()

	// Phase 2: with training done, operator 0 should now be drawn more
	// often than the average operator.
	before := used[0]
	var beforeTotal uint64
	for _, u := range used {
		beforeTotal += u
	}
	for i := 0; i < 2000; i++ {
		m.Havoc(base)
		m.RewardLast(false)
	}
	used2, _ := m.OperatorStats()
	gained0 := used2[0] - before
	var gainedTotal uint64
	for _, u := range used2 {
		gainedTotal += u
	}
	gainedTotal -= beforeTotal

	avgGain := gainedTotal / numHavocOps
	if gained0 <= avgGain {
		t.Errorf("trained operator drawn %d times vs average %d; no bias", gained0, avgGain)
	}
}

func TestAdaptiveFloorPreventsStarvation(t *testing.T) {
	m := New(rng.New(4), [][]byte{[]byte("tok")})
	m.EnableAdaptive()
	base := make([]byte, 64)
	// Never reward anything: every operator must still get drawn.
	for i := 0; i < 5000; i++ {
		m.Havoc(base)
		m.RewardLast(false)
	}
	used, _ := m.OperatorStats()
	for op, u := range used {
		if u == 0 {
			t.Errorf("operator %d starved", op)
		}
	}
}

func TestAdaptiveHavocStillMutates(t *testing.T) {
	m := New(rng.New(5), nil)
	m.EnableAdaptive()
	base := make([]byte, 64)
	changed := 0
	for i := 0; i < 100; i++ {
		out := m.Havoc(base)
		if len(out) != len(base) {
			changed++
			m.RewardLast(false)
			continue
		}
		for j := range out {
			if out[j] != base[j] {
				changed++
				break
			}
		}
		m.RewardLast(false)
	}
	if changed < 90 {
		t.Errorf("adaptive havoc left input unchanged in %d/100 trials", 100-changed)
	}
}
