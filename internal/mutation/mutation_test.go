package mutation

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/bigmap/bigmap/internal/rng"
)

func TestDeterministicCountMatchesEnumeration(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 16, 33} {
		m := New(rng.New(1), [][]byte{[]byte("AB"), []byte("magic")})
		// 0xAB appears in no interesting-value table and in no dictionary
		// token, so no candidate is skipped and the exact bound is met.
		base := bytes.Repeat([]byte{0xAB}, n)
		got := 0
		m.Deterministic(base, func([]byte) bool {
			got++
			return true
		})
		want := m.DeterministicCount(n)
		if got != want {
			t.Errorf("n=%d: enumerated %d candidates, DeterministicCount says %d", n, got, want)
		}
	}
}

func TestDeterministicCountIsUpperBound(t *testing.T) {
	// A zero-filled base triggers the no-op skip for interesting8's 0 and
	// must stay strictly below the bound without exceeding it.
	for _, n := range []int{1, 8, 32} {
		m := New(rng.New(1), nil)
		got := 0
		m.Deterministic(make([]byte, n), func([]byte) bool {
			got++
			return true
		})
		bound := m.DeterministicCount(n)
		if got > bound {
			t.Errorf("n=%d: enumerated %d > bound %d", n, got, bound)
		}
		if got == bound {
			t.Errorf("n=%d: expected skips for zero base, got the full bound %d", n, bound)
		}
	}
}

func TestDeterministicProducesDistinctFirstStage(t *testing.T) {
	// The first 8 candidates of bitflip 1/1 on a 1-byte input are the 8
	// single-bit flips, each distinct from the base.
	m := New(rng.New(1), nil)
	base := []byte{0x00}
	var got []byte
	i := 0
	m.Deterministic(base, func(c []byte) bool {
		if i < 8 {
			got = append(got, c[0])
		}
		i++
		return i < 8
	})
	want := []byte{1, 2, 4, 8, 16, 32, 64, 128}
	if !bytes.Equal(got, want) {
		t.Errorf("bitflip candidates = %v, want %v", got, want)
	}
}

func TestDeterministicRestoresBetweenCandidates(t *testing.T) {
	// Each candidate must differ from base in a bounded region only: no
	// mutation may leak into the next candidate.
	m := New(rng.New(1), nil)
	base := []byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x11, 0x22}
	m.Deterministic(base, func(c []byte) bool {
		diff := 0
		for i := range c {
			if c[i] != base[i] {
				diff++
			}
		}
		if diff == 0 {
			t.Fatal("candidate identical to base")
		}
		if diff > 4 {
			t.Fatalf("candidate differs in %d bytes; stages mutate at most 4", diff)
		}
		return true
	})
}

func TestDeterministicEmptyInput(t *testing.T) {
	m := New(rng.New(1), nil)
	called := false
	m.Deterministic(nil, func([]byte) bool {
		called = true
		return true
	})
	if called {
		t.Error("Deterministic produced candidates for empty input")
	}
}

func TestDeterministicEarlyStop(t *testing.T) {
	m := New(rng.New(1), nil)
	calls := 0
	m.Deterministic(make([]byte, 64), func([]byte) bool {
		calls++
		return calls < 10
	})
	if calls != 10 {
		t.Errorf("early stop after %d calls, want 10", calls)
	}
}

func TestHavocAlwaysReturnsSomething(t *testing.T) {
	m := New(rng.New(2), [][]byte{[]byte("tok")})
	property := func(base []byte) bool {
		out := m.Havoc(base)
		return out != nil && len(out) < maxInputLen+64
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHavocMutates(t *testing.T) {
	m := New(rng.New(3), nil)
	base := make([]byte, 128)
	changed := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		out := m.Havoc(base)
		if !bytes.Equal(out, base) {
			changed++
		}
	}
	if changed < trials*9/10 {
		t.Errorf("havoc left input unchanged in %d/%d trials", trials-changed, trials)
	}
}

func TestHavocOnEmptyInput(t *testing.T) {
	m := New(rng.New(4), nil)
	out := m.Havoc(nil)
	if len(out) == 0 {
		t.Error("havoc of empty input produced empty output")
	}
}

func TestHavocDeterministicGivenSeed(t *testing.T) {
	base := []byte("determinism matters for experiments")
	a := New(rng.New(77), nil).Havoc(base)
	b := New(rng.New(77), nil).Havoc(base)
	if !bytes.Equal(a, b) {
		t.Error("same-seed havoc differs")
	}
}

func TestSpliceBasics(t *testing.T) {
	m := New(rng.New(5), nil)

	if m.Splice([]byte{1, 2}, []byte{3, 4, 5, 6, 7, 8}) != nil {
		t.Error("spliced a too-short input")
	}
	same := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if m.Splice(same, same) != nil {
		t.Error("spliced identical inputs")
	}

	a := []byte{0, 0, 0, 0, 0, 0, 0, 0}
	b := []byte{0, 9, 9, 9, 9, 9, 9, 0}
	out := m.Splice(a, b)
	if out == nil {
		t.Fatal("failed to splice divergent inputs")
	}
	if len(out) != len(b) {
		t.Errorf("splice length %d, want %d", len(out), len(b))
	}
	// Result must start with a's prefix and end with b's suffix.
	if out[0] != a[0] || out[len(out)-1] != b[len(b)-1] {
		t.Errorf("splice boundaries wrong: %v", out)
	}
	// And must contain material from both (some 0 prefix, some 9s).
	has9 := bytes.IndexByte(out, 9) >= 0
	if !has9 {
		t.Errorf("splice contains nothing from b: %v", out)
	}
}

func TestSpliceSplitPointWithinDivergence(t *testing.T) {
	m := New(rng.New(6), nil)
	a := []byte{1, 1, 5, 5, 5, 5, 1, 1, 1, 1}
	b := []byte{1, 1, 7, 7, 7, 7, 1, 1, 1, 1}
	for i := 0; i < 50; i++ {
		out := m.Splice(a, b)
		if out == nil {
			t.Fatal("splice failed")
		}
		// Split must fall in (first, last) = (2, 5): prefix from a, suffix
		// from b; so out[2] is from a and out[5] is from b.
		if out[2] != 5 || out[5] != 7 {
			t.Fatalf("split outside divergent region: %v", out)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	property := func(v uint32, be bool) bool {
		p := make([]byte, 4)
		storeUint(p, uint64(v), 4, be)
		return loadUint(p, 4, be) == uint64(v)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreEndiannessDiffers(t *testing.T) {
	le := make([]byte, 2)
	be := make([]byte, 2)
	storeUint(le, 0x1234, 2, false)
	storeUint(be, 0x1234, 2, true)
	if le[0] != 0x34 || le[1] != 0x12 {
		t.Errorf("little endian = %v", le)
	}
	if be[0] != 0x12 || be[1] != 0x34 {
		t.Errorf("big endian = %v", be)
	}
}
