package mutation

// Adaptive operator scheduling, MOpt-lite: the havoc stage tracks which of
// its operators contributed to interesting test cases and biases future
// operator selection toward the productive ones. Credit is assigned to every
// operator in the mutant's stack (the standard approximation — individual
// attribution inside a stacked mutation is not observable).
//
// The scheduler keeps a floor probability for every operator so none starves:
// operator usefulness drifts over a campaign (block ops matter early,
// byte-level ops matter when solving comparisons), and a starved operator
// could never recover.

// numHavocOps is the number of havoc operator kinds in Havoc's switch.
const numHavocOps = 15

// adaptiveState tracks per-operator statistics.
type adaptiveState struct {
	used    [numHavocOps]uint64
	success [numHavocOps]uint64
	lastOps []int
}

// EnableAdaptive switches the mutator to weighted operator selection.
// Call RewardLast after evaluating each Havoc mutant to close the loop.
func (m *Mutator) EnableAdaptive() {
	if m.adaptive == nil {
		m.adaptive = &adaptiveState{}
	}
}

// AdaptiveEnabled reports whether adaptive scheduling is on.
func (m *Mutator) AdaptiveEnabled() bool { return m.adaptive != nil }

// RewardLast credits (or not) the operators used by the most recent Havoc
// call. Call exactly once per mutant, after its evaluation.
func (m *Mutator) RewardLast(interesting bool) {
	if m.adaptive == nil {
		return
	}
	for _, op := range m.adaptive.lastOps {
		m.adaptive.used[op]++
		if interesting {
			m.adaptive.success[op]++
		}
	}
	m.adaptive.lastOps = m.adaptive.lastOps[:0]
}

// OperatorStats returns (used, success) counters per havoc operator, for
// reporting and tests.
func (m *Mutator) OperatorStats() (used, success []uint64) {
	if m.adaptive == nil {
		return nil, nil
	}
	u := make([]uint64, numHavocOps)
	s := make([]uint64, numHavocOps)
	copy(u, m.adaptive.used[:])
	copy(s, m.adaptive.success[:])
	return u, s
}

// PendingOps returns the operators used since the last RewardLast call —
// credit attribution still in flight. The splice stage's Havoc calls are
// never rewarded, so this is routinely non-empty at step boundaries and must
// be checkpointed for an exact resume.
func (m *Mutator) PendingOps() []int {
	if m.adaptive == nil {
		return nil
	}
	return append([]int(nil), m.adaptive.lastOps...)
}

// RestoreOperatorStats reloads per-operator counters and the pending credit
// list from a checkpoint, enabling adaptive mode if it was off. Slices
// shorter than the operator count leave the tail at zero; longer slices are
// truncated (forward compatibility with checkpoints written by builds with
// more operators).
func (m *Mutator) RestoreOperatorStats(used, success []uint64, pending []int) {
	m.EnableAdaptive()
	m.adaptive.used = [numHavocOps]uint64{}
	m.adaptive.success = [numHavocOps]uint64{}
	copy(m.adaptive.used[:], used)
	copy(m.adaptive.success[:], success)
	m.adaptive.lastOps = append(m.adaptive.lastOps[:0], pending...)
}

// pickOp selects the next havoc operator: uniformly when adaptive mode is
// off, success-rate weighted (with a 25% uniform floor) when on.
func (m *Mutator) pickOp() int {
	if m.adaptive == nil {
		return m.src.Intn(numHavocOps)
	}
	// A quarter of picks stay uniform so no operator starves.
	if m.src.Intn(4) == 0 {
		op := m.src.Intn(numHavocOps)
		m.adaptive.lastOps = append(m.adaptive.lastOps, op)
		return op
	}
	// Weight = (success+1)/(used+numHavocOps): Laplace-smoothed success
	// rate. Sampled via cumulative weights scaled to integers.
	var weights [numHavocOps]uint64
	var total uint64
	for i := 0; i < numHavocOps; i++ {
		w := (m.adaptive.success[i] + 1) * 1000 / (m.adaptive.used[i] + numHavocOps)
		if w == 0 {
			w = 1
		}
		weights[i] = w
		total += w
	}
	pick := m.src.Uint64() % total
	op := 0
	for i := 0; i < numHavocOps; i++ {
		if pick < weights[i] {
			op = i
			break
		}
		pick -= weights[i]
	}
	m.adaptive.lastOps = append(m.adaptive.lastOps, op)
	return op
}
