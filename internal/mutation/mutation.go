// Package mutation implements AFL's mutation engine: the deterministic
// stages (bit flips, byte flips, arithmetic, interesting values, dictionary)
// followed by stacked random "havoc" mutations and corpus splicing
// (paper §II-A1). The engine is agnostic to everything else in the fuzzer —
// the paper's approach is orthogonal to seed scheduling and mutation, and so
// is this package.
package mutation

import (
	"bytes"

	"github.com/bigmap/bigmap/internal/rng"
)

// AFL's interesting value tables.
var (
	interesting8  = []int8{-128, -1, 0, 1, 16, 32, 64, 100, 127}
	interesting16 = []int16{-32768, -129, 128, 255, 256, 512, 1000, 1024, 4096, 32767}
	interesting32 = []int32{-2147483648, -100663046, -32769, 32768, 65535, 65536, 100663045, 2147483647}
)

// Limits mirroring AFL's config.h.
const (
	arithMax      = 35 // maximum arithmetic delta
	havocStackPow = 7  // stacked havoc operations: 2^(1+rng(havocStackPow))
	havocBlkSmall = 32 // small block size for block ops
	maxInputLen   = 1 << 20
	minSpliceLen  = 4
)

// Mutator generates test cases from seed inputs. Not safe for concurrent
// use; each fuzzing instance owns one.
type Mutator struct {
	src      *rng.Source
	dict     [][]byte
	buf      []byte
	adaptive *adaptiveState
}

// New creates a mutator drawing randomness from src. dict is an optional
// dictionary of tokens for the dictionary stages (may be nil).
func New(src *rng.Source, dict [][]byte) *Mutator {
	return &Mutator{src: src, dict: dict}
}

// Source exposes the mutator's RNG so checkpointing can capture and restore
// its exact stream position.
func (m *Mutator) Source() *rng.Source { return m.src }

// Deterministic enumerates AFL's deterministic mutations of base, invoking
// fn for each candidate. The candidate buffer is reused between calls; fn
// must copy it if it needs to keep it. Enumeration stops early if fn returns
// false. The number of candidates is O(len(base) * (8 + 2*arithMax*3 + ...)),
// tens of thousands for a kilobyte input, which is why 24-hour campaigns
// usually skip this stage (§II-A1) — but it is fully implemented, as master
// instances in parallel mode run it (§V-D).
func (m *Mutator) Deterministic(base []byte, fn func([]byte) bool) {
	n := len(base)
	if n == 0 {
		return
	}
	buf := m.scratch(n)
	copy(buf, base)
	restore := func() { copy(buf, base) }

	// Stage: bitflip 1/1, 2/1, 4/1.
	for _, width := range []int{1, 2, 4} {
		for bit := 0; bit+width <= n*8; bit++ {
			for w := 0; w < width; w++ {
				buf[(bit+w)>>3] ^= 1 << uint((bit+w)&7)
			}
			if !fn(buf) {
				return
			}
			restore()
		}
	}

	// Stage: byteflip 8/8, 16/8, 32/8.
	for _, width := range []int{1, 2, 4} {
		for i := 0; i+width <= n; i++ {
			for w := 0; w < width; w++ {
				buf[i+w] ^= 0xFF
			}
			if !fn(buf) {
				return
			}
			restore()
		}
	}

	// Stage: arith 8.
	for i := 0; i < n; i++ {
		orig := buf[i]
		for d := 1; d <= arithMax; d++ {
			buf[i] = orig + byte(d)
			if !fn(buf) {
				return
			}
			buf[i] = orig - byte(d)
			if !fn(buf) {
				return
			}
			buf[i] = orig
		}
	}

	// Stage: arith 16 and 32, little and big endian.
	if !m.arithWide(buf, base, 2, fn) || !m.arithWide(buf, base, 4, fn) {
		return
	}

	// Stage: interesting 8. Writes that would not change the byte are
	// skipped, as AFL does.
	for i := 0; i < n; i++ {
		orig := buf[i]
		for _, v := range interesting8 {
			if byte(v) == orig {
				continue
			}
			buf[i] = byte(v)
			if !fn(buf) {
				return
			}
		}
		buf[i] = orig
	}

	// Stage: interesting 16 and 32, both endiannesses.
	if !m.interestingWide(buf, base, fn) {
		return
	}

	// Stage: dictionary overwrite.
	for _, tok := range m.dict {
		if len(tok) == 0 || len(tok) > n {
			continue
		}
		for i := 0; i+len(tok) <= n; i++ {
			if bytes.Equal(base[i:i+len(tok)], tok) {
				continue
			}
			copy(buf[i:], tok)
			if !fn(buf) {
				return
			}
			restore()
		}
	}
}

// arithWide runs the 16- or 32-bit arithmetic stage.
func (m *Mutator) arithWide(buf, base []byte, width int, fn func([]byte) bool) bool {
	n := len(base)
	for i := 0; i+width <= n; i++ {
		for d := 1; d <= arithMax; d++ {
			for _, sign := range []int64{1, -1} {
				for _, be := range []bool{false, true} {
					v := loadUint(base[i:], width, be)
					v = uint64(int64(v) + sign*int64(d))
					storeUint(buf[i:], v, width, be)
					if !fn(buf) {
						return false
					}
					copy(buf[i:i+width], base[i:i+width])
				}
			}
		}
	}
	return true
}

// interestingWide runs the 16- and 32-bit interesting-value stages.
func (m *Mutator) interestingWide(buf, base []byte, fn func([]byte) bool) bool {
	n := len(base)
	for i := 0; i+2 <= n; i++ {
		for _, v := range interesting16 {
			for _, be := range []bool{false, true} {
				if loadUint(base[i:], 2, be) == uint64(uint16(v)) {
					continue
				}
				storeUint(buf[i:], uint64(uint16(v)), 2, be)
				if !fn(buf) {
					return false
				}
				copy(buf[i:i+2], base[i:i+2])
			}
		}
	}
	for i := 0; i+4 <= n; i++ {
		for _, v := range interesting32 {
			for _, be := range []bool{false, true} {
				if loadUint(base[i:], 4, be) == uint64(uint32(v)) {
					continue
				}
				storeUint(buf[i:], uint64(uint32(v)), 4, be)
				if !fn(buf) {
					return false
				}
				copy(buf[i:i+4], base[i:i+4])
			}
		}
	}
	return true
}

// DeterministicCount returns an upper bound on the number of candidates
// Deterministic will produce for an input of length n (with the current
// dictionary), for stage accounting. The actual count is lower when the
// input already contains interesting values or dictionary tokens, whose
// no-op writes are skipped.
func (m *Mutator) DeterministicCount(n int) int {
	if n == 0 {
		return 0
	}
	count := 0
	for _, w := range []int{1, 2, 4} { // bitflips
		count += n*8 - w + 1
	}
	for _, w := range []int{1, 2, 4} { // byteflips
		if n >= w {
			count += n - w + 1
		}
	}
	count += n * arithMax * 2 // arith8
	if n >= 2 {
		count += (n - 1) * arithMax * 4 // arith16 le/be +/-
	}
	if n >= 4 {
		count += (n - 3) * arithMax * 4 // arith32
	}
	count += n * len(interesting8)
	if n >= 2 {
		count += (n - 1) * len(interesting16) * 2
	}
	if n >= 4 {
		count += (n - 3) * len(interesting32) * 2
	}
	for _, tok := range m.dict {
		if len(tok) > 0 && len(tok) <= n {
			count += n - len(tok) + 1
		}
	}
	return count
}

// Havoc produces one stacked-random mutant of base. The result buffer is
// owned by the mutator and reused by the next call.
func (m *Mutator) Havoc(base []byte) []byte {
	src := m.src
	buf := append(m.scratch(0)[:0], base...)

	stack := 1 << (1 + src.Intn(havocStackPow))
	for s := 0; s < stack; s++ {
		if len(buf) == 0 {
			buf = append(buf, byte(src.Uint32()))
			continue
		}
		switch m.pickOp() {
		case 0: // flip a random bit
			bit := src.Intn(len(buf) * 8)
			buf[bit>>3] ^= 1 << uint(bit&7)
		case 1: // interesting byte
			buf[src.Intn(len(buf))] = byte(interesting8[src.Intn(len(interesting8))])
		case 2: // interesting word
			if len(buf) >= 2 {
				i := src.Intn(len(buf) - 1)
				storeUint(buf[i:], uint64(uint16(interesting16[src.Intn(len(interesting16))])), 2, src.Bool())
			}
		case 3: // interesting dword
			if len(buf) >= 4 {
				i := src.Intn(len(buf) - 3)
				storeUint(buf[i:], uint64(uint32(interesting32[src.Intn(len(interesting32))])), 4, src.Bool())
			}
		case 4: // random add/sub byte
			i := src.Intn(len(buf))
			buf[i] += byte(1 + src.Intn(arithMax))
		case 5:
			i := src.Intn(len(buf))
			buf[i] -= byte(1 + src.Intn(arithMax))
		case 6: // random add/sub word
			if len(buf) >= 2 {
				i := src.Intn(len(buf) - 1)
				be := src.Bool()
				v := loadUint(buf[i:], 2, be)
				if src.Bool() {
					v += uint64(1 + src.Intn(arithMax))
				} else {
					v -= uint64(1 + src.Intn(arithMax))
				}
				storeUint(buf[i:], v, 2, be)
			}
		case 7: // random add/sub dword
			if len(buf) >= 4 {
				i := src.Intn(len(buf) - 3)
				be := src.Bool()
				v := loadUint(buf[i:], 4, be)
				if src.Bool() {
					v += uint64(1 + src.Intn(arithMax))
				} else {
					v -= uint64(1 + src.Intn(arithMax))
				}
				storeUint(buf[i:], v, 4, be)
			}
		case 8: // set random byte to random value (XOR with 1..255 so it changes)
			i := src.Intn(len(buf))
			buf[i] ^= byte(1 + src.Intn(255))
		case 9: // delete block
			if len(buf) > 2 {
				dl := m.blockLen(len(buf) - 1)
				from := src.Intn(len(buf) - dl + 1)
				buf = append(buf[:from], buf[from+dl:]...)
			}
		case 10: // clone block (75%) or insert constant block (25%)
			if len(buf)+havocBlkSmall < maxInputLen {
				cl := m.blockLen(len(buf))
				to := src.Intn(len(buf) + 1)
				block := make([]byte, cl)
				if src.Intn(4) != 0 {
					from := src.Intn(len(buf) - cl + 1)
					copy(block, buf[from:from+cl])
				} else {
					fill := byte(src.Uint32())
					for i := range block {
						block[i] = fill
					}
				}
				buf = append(buf[:to], append(block, buf[to:]...)...)
			}
		case 11: // overwrite block with copy (75%) or constant (25%)
			if len(buf) >= 2 {
				cl := m.blockLen(len(buf) - 1)
				to := src.Intn(len(buf) - cl + 1)
				if src.Intn(4) != 0 {
					from := src.Intn(len(buf) - cl + 1)
					copy(buf[to:to+cl], buf[from:from+cl])
				} else {
					fill := byte(src.Uint32())
					for i := to; i < to+cl; i++ {
						buf[i] = fill
					}
				}
			}
		case 12, 13: // dictionary overwrite / insert
			if len(m.dict) > 0 {
				tok := m.dict[src.Intn(len(m.dict))]
				if len(tok) == 0 {
					break
				}
				if src.Bool() && len(tok) <= len(buf) {
					i := src.Intn(len(buf) - len(tok) + 1)
					copy(buf[i:], tok)
				} else if len(buf)+len(tok) < maxInputLen {
					i := src.Intn(len(buf) + 1)
					buf = append(buf[:i], append(append([]byte{}, tok...), buf[i:]...)...)
				}
			}
		case 14: // flip random byte completely
			i := src.Intn(len(buf))
			buf[i] = ^buf[i]
		}
	}
	m.buf = buf
	return buf
}

// blockLen picks an AFL-style block length in [1, limit].
func (m *Mutator) blockLen(limit int) int {
	if limit < 1 {
		return 1
	}
	upper := havocBlkSmall
	if upper > limit {
		upper = limit
	}
	return 1 + m.src.Intn(upper)
}

// Splice combines two corpus entries: it locates the first and last
// differing byte, picks a split point between them, and joins a's head with
// b's tail, then typically havocs the result. Returns nil if the inputs are
// too similar or too short to splice, matching AFL's retry behaviour.
func (m *Mutator) Splice(a, b []byte) []byte {
	if len(a) < minSpliceLen || len(b) < minSpliceLen {
		return nil
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	first, last := -1, -1
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || last <= first+1 {
		return nil
	}
	split := first + 1 + m.src.Intn(last-first-1)
	out := make([]byte, split+len(b)-split)
	copy(out, a[:split])
	copy(out[split:], b[split:])
	return out
}

// scratch returns a reusable buffer of at least n bytes.
func (m *Mutator) scratch(n int) []byte {
	if cap(m.buf) < n {
		m.buf = make([]byte, n, n*2+64)
	}
	m.buf = m.buf[:n]
	return m.buf
}

func loadUint(p []byte, width int, bigEndian bool) uint64 {
	var v uint64
	if bigEndian {
		for i := 0; i < width; i++ {
			v = v<<8 | uint64(p[i])
		}
	} else {
		for i := width - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[i])
		}
	}
	return v
}

func storeUint(p []byte, v uint64, width int, bigEndian bool) {
	if bigEndian {
		for i := width - 1; i >= 0; i-- {
			p[i] = byte(v)
			v >>= 8
		}
	} else {
		for i := 0; i < width; i++ {
			p[i] = byte(v)
			v >>= 8
		}
	}
}
