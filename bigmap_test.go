package bigmap_test

import (
	"testing"

	"github.com/bigmap/bigmap"
	"github.com/bigmap/bigmap/internal/rng"
)

// smallProgram generates a compact fuzzable target through the public API.
func smallProgram(t testing.TB) *bigmap.Program {
	t.Helper()
	prog, err := bigmap.Generate(bigmap.GenSpec{
		Name:           "facade",
		Seed:           1,
		NumFuncs:       4,
		BlocksPerFunc:  12,
		InputLen:       32,
		BranchFraction: 0.6,
		CrashSites:     2,
		CrashDepth:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestFacadeMapsRoundTrip(t *testing.T) {
	for _, mk := range []func(int) (bigmap.Map, error){
		func(n int) (bigmap.Map, error) { return bigmap.NewAFLMap(n) },
		func(n int) (bigmap.Map, error) { return bigmap.NewBigMap(n) },
	} {
		m, err := mk(bigmap.MapSize64K)
		if err != nil {
			t.Fatal(err)
		}
		virgin := m.NewVirgin()
		m.Add(42)
		m.Classify()
		if v := m.CompareWith(virgin); v != bigmap.VerdictNewEdges {
			t.Errorf("%s: verdict = %v", m.Scheme(), v)
		}
	}
}

func TestFacadeMetrics(t *testing.T) {
	for _, mk := range []func() (bigmap.Metric, error){
		func() (bigmap.Metric, error) { return bigmap.NewEdgeMetric(bigmap.MapSize64K) },
		func() (bigmap.Metric, error) { return bigmap.NewNGramMetric(bigmap.MapSize64K, 3) },
		func() (bigmap.Metric, error) { return bigmap.NewContextMetric(bigmap.MapSize64K) },
	} {
		m, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		m.Begin()
		if key := m.Visit(123); key >= bigmap.MapSize64K {
			t.Errorf("%s: key out of range", m.Name())
		}
	}
}

func TestFacadeFuzzerWithOptions(t *testing.T) {
	prog := smallProgram(t)
	f, err := bigmap.NewFuzzer(prog,
		bigmap.WithScheme(bigmap.SchemeBigMap),
		bigmap.WithMapSize(bigmap.MapSize2M),
		bigmap.WithSeed(7),
		bigmap.WithTimings(),
	)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	for _, s := range prog.SampleSeeds(src, 4) {
		_ = f.AddSeed(s) // crashing seeds are allowed to fail
	}
	if f.Queue().Len() == 0 {
		t.Fatal("no seeds accepted")
	}
	if err := f.RunExecs(3000); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Execs < 3000 || st.EdgesDiscovered == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Timings.Total() == 0 {
		t.Error("timings not recorded")
	}
}

func TestFacadeProfilesAndCollision(t *testing.T) {
	if len(bigmap.Profiles()) != 19 {
		t.Error("Profiles() != 19")
	}
	if len(bigmap.CompositionProfiles()) != 13 {
		t.Error("CompositionProfiles() != 13")
	}
	if _, ok := bigmap.ProfileByName("zlib"); !ok {
		t.Error("zlib missing")
	}
	rate, err := bigmap.CollisionRate(bigmap.MapSize64K, 40948)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.25 || rate > 0.27 {
		t.Errorf("CollisionRate = %v, want ~0.2564 (Table II sqlite3)", rate)
	}
	p, err := bigmap.BirthdayProbability(bigmap.MapSize64K, 300)
	if err != nil || p < 0.45 || p > 0.55 {
		t.Errorf("BirthdayProbability = %v, %v", p, err)
	}
	if got := bigmap.MeasureCollisions([]uint32{4, 2, 5, 3, 2}); got != 0.2 {
		t.Errorf("MeasureCollisions = %v, want 0.2 (paper §II-B example)", got)
	}
}

func TestFacadeLafIntel(t *testing.T) {
	prog, err := bigmap.Generate(bigmap.GenSpec{
		Name:          "laf",
		Seed:          2,
		NumFuncs:      2,
		BlocksPerFunc: 10,
		InputLen:      32,
		MagicCompares: 3,
		MagicWidth:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	laf, stats := bigmap.LafIntel(prog, 1)
	if stats.SplitCompares < 3 || stats.StaticEdgesAfter <= stats.StaticEdgesBefore {
		t.Errorf("laf stats = %+v", stats)
	}
	if laf.Name != "laf+laf" && laf.Name != "laf"+"+laf" {
		t.Logf("transformed name: %s", laf.Name)
	}
}

func TestFacadeCampaign(t *testing.T) {
	prog := smallProgram(t)
	seeds := prog.SampleSeeds(rng.New(11), 4)
	camp, err := bigmap.NewCampaign(prog, bigmap.CampaignConfig{
		Instances: 2,
		SyncEvery: 1000,
		Fuzzer:    bigmap.FuzzerConfig{Scheme: bigmap.SchemeBigMap, Seed: 3},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := camp.RunExecs(2000); err != nil {
		t.Fatal(err)
	}
	rep := camp.Report()
	if rep.TotalExecs < 4000 || rep.MaxEdges == 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestFacadeClassifyByte(t *testing.T) {
	if bigmap.ClassifyByte(5) != 8 {
		t.Error("ClassifyByte(5) != bucket 8")
	}
}
