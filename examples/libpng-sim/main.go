// libpng-sim: fuzz the libpng-shaped Table II benchmark and compare the two
// map schemes at a 2MB map — a miniature of the paper's Figure 6 for one
// benchmark.
//
// The libpng profile mirrors the paper's benchmark characteristics (1 seed,
// ~3k static edges at full scale, moderate gating); at 2MB the flat AFL
// bitmap pays three full-map traversals per test case while BigMap touches
// only the used region, so the throughput gap is dramatic even though both
// campaigns make the same coverage decisions.
//
// Run with:
//
//	go run ./examples/libpng-sim
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/bigmap/bigmap"
)

const (
	mapSize = bigmap.MapSize2M
	budget  = 30000
	scale   = 0.25
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "libpng-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	profile, ok := bigmap.ProfileByName("libpng")
	if !ok {
		return fmt.Errorf("libpng profile missing")
	}
	prog, err := bigmap.Generate(profile.Spec(scale))
	if err != nil {
		return err
	}
	fmt.Printf("libpng-shaped target: %d blocks, %d static edges (paper: %d at full scale)\n",
		prog.NumBlocks(), prog.StaticEdges(), profile.PaperStaticEdges)

	seeds := bigmap.SynthesizeSeeds(prog, 3, 8)

	type outcome struct {
		scheme  bigmap.Scheme
		execsPS float64
		stats   bigmap.Stats
	}
	var results []outcome
	for _, scheme := range []bigmap.Scheme{bigmap.SchemeAFL, bigmap.SchemeBigMap} {
		f, err := bigmap.NewFuzzer(prog,
			bigmap.WithScheme(scheme),
			bigmap.WithMapSize(mapSize),
			bigmap.WithSeed(1),
			bigmap.WithExecCostFactor(8),
		)
		if err != nil {
			return err
		}
		accepted := 0
		for _, s := range seeds {
			if err := f.AddSeed(s); err == nil {
				accepted++
			}
		}
		if accepted == 0 {
			return fmt.Errorf("%s: no usable seeds", scheme)
		}

		start := time.Now()
		if err := f.RunExecs(budget); err != nil {
			return err
		}
		elapsed := time.Since(start).Seconds()
		st := f.Stats()
		results = append(results, outcome{
			scheme:  scheme,
			execsPS: float64(st.Execs) / elapsed,
			stats:   st,
		})
		fmt.Printf("  %-7s %8.0f execs/s  paths=%-3d edges=%-4d used_key=%d\n",
			scheme, float64(st.Execs)/elapsed, st.Paths, st.EdgesDiscovered, st.UsedKeys)
	}

	if len(results) == 2 && results[0].execsPS > 0 {
		fmt.Printf("\nBigMap speedup at a %s map: %.1fx\n",
			"2MB", results[1].execsPS/results[0].execsPS)
		fmt.Printf("coverage parity: afl=%d vs bigmap=%d edges (same feedback, different cost)\n",
			results[0].stats.EdgesDiscovered, results[1].stats.EdgesDiscovered)
	}
	return nil
}
