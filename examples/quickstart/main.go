// Quickstart: fuzz a small synthetic target with BigMap and watch coverage
// grow.
//
// This is the minimal end-to-end use of the library:
//
//  1. generate an instrumented target (or pick a Table II profile),
//  2. create a fuzzer with the BigMap two-level coverage map,
//  3. seed it, run it, read the stats.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"github.com/bigmap/bigmap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A small branchy program with a couple of guarded crash sites.
	prog, err := bigmap.Generate(bigmap.GenSpec{
		Name:           "quickstart",
		Seed:           42,
		NumFuncs:       8,
		BlocksPerFunc:  20,
		InputLen:       64,
		BranchFraction: 0.6,
		Switches:       3,
		SwitchFanout:   6,
		Loops:          3,
		LoopMax:        16,
		CrashSites:     3,
		CrashDepth:     2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("target: %d blocks, %d static edges, %d crash sites\n",
		prog.NumBlocks(), prog.StaticEdges(), len(prog.CrashSites()))

	// A BigMap-backed fuzzer: the 2MB map would cripple a flat bitmap, but
	// the two-level scheme only ever touches the used region.
	f, err := bigmap.NewFuzzer(prog,
		bigmap.WithScheme(bigmap.SchemeBigMap),
		bigmap.WithMapSize(bigmap.MapSize2M),
		bigmap.WithSeed(1),
	)
	if err != nil {
		return err
	}

	// Seed corpus: the target type can synthesize plausible seeds, the
	// stand-in for the seed files of a real campaign.
	seeds := bigmap.SynthesizeSeeds(prog, 7, 8)
	accepted := 0
	for _, s := range seeds {
		if err := f.AddSeed(s); err == nil {
			accepted++
		}
	}
	if accepted == 0 {
		return fmt.Errorf("no usable seeds")
	}

	// Fuzz in bursts and report progress.
	for burst := 1; burst <= 5; burst++ {
		if err := f.RunExecs(20000); err != nil {
			return err
		}
		st := f.Stats()
		fmt.Printf("after %7d execs: %3d paths, %4d edges, %d unique crashes\n",
			st.Execs, st.Paths, st.EdgesDiscovered, st.UniqueCrashes)
	}

	st := f.Stats()
	fmt.Printf("\nfinal: used_key=%d of %d map slots (%.4f%% of the map in use)\n",
		st.UsedKeys, bigmap.MapSize2M,
		100*float64(st.UsedKeys)/float64(bigmap.MapSize2M))
	for _, rec := range f.Crashes().Records() {
		fmt.Printf("crash bucket %016x: site=%d stack-depth=%d hits=%d\n",
			rec.Key, rec.Site, rec.StackDepth, rec.Count)
	}
	return nil
}
