// parallel-fuzzing: run a master–secondary campaign (the paper's §V-D
// configuration) with four concurrent instances and a 2MB BigMap, with
// periodic corpus cross-pollination.
//
// Run with:
//
//	go run ./examples/parallel-fuzzing
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/bigmap/bigmap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "parallel-fuzzing:", err)
		os.Exit(1)
	}
}

func run() error {
	prog, err := bigmap.Generate(bigmap.GenSpec{
		Name:              "parallel-demo",
		Seed:              77,
		NumFuncs:          30,
		BlocksPerFunc:     24,
		InputLen:          128,
		BranchFraction:    0.65,
		MagicCompares:     8,
		MagicWidth:        2,
		BonusBlocks:       6,
		GatedCallFraction: 0.3,
		Switches:          4,
		SwitchFanout:      8,
		Loops:             4,
		LoopMax:           32,
		CrashSites:        6,
		CrashDepth:        2,
	})
	if err != nil {
		return err
	}
	seeds := bigmap.SynthesizeSeeds(prog, 4, 8)

	camp, err := bigmap.NewCampaign(prog, bigmap.CampaignConfig{
		Instances:           4,
		SyncEvery:           20000,
		MasterDeterministic: true, // instance 0 runs the deterministic stages
		Fuzzer: bigmap.FuzzerConfig{
			Scheme:  bigmap.SchemeBigMap,
			MapSize: bigmap.MapSize2M,
			Seed:    5,
		},
	}, seeds)
	if err != nil {
		return err
	}

	start := time.Now()
	if err := camp.RunFor(3 * time.Second); err != nil {
		return err
	}
	elapsed := time.Since(start).Seconds()

	rep := camp.Report()
	fmt.Printf("campaign: 4 instances, 2MB BigMap, %.1fs wall clock\n", elapsed)
	fmt.Printf("  total execs   : %d (%.0f/sec aggregate)\n",
		rep.TotalExecs, float64(rep.TotalExecs)/elapsed)
	fmt.Printf("  best coverage : %d edges\n", rep.MaxEdges)
	fmt.Printf("  unique crashes: %d (union across instances)\n", rep.UniqueCrashes)
	for i, st := range rep.PerInstance {
		role := "secondary"
		if i == 0 {
			role = "master"
		}
		fmt.Printf("  instance %d (%s): execs=%-8d paths=%-4d edges=%-4d crashes=%d\n",
			i, role, st.Execs, st.Paths, st.EdgesDiscovered, st.UniqueCrashes)
	}
	return nil
}
