// metric-composition: the paper's §V-C scenario on one benchmark — stack
// the laf-intel transformation with N-gram (N=3) coverage, then compare a
// 64kB map against a 2MB map, both under BigMap.
//
// laf-intel splits every multi-byte magic comparison into a cascade of
// single-byte comparisons, multiplying static edges; N-gram keys coverage by
// the last three blocks rather than one edge, multiplying map pressure
// again. On a 64kB map the composed metric collides heavily (Equation 1)
// and the corrupted feedback hides crash guards; a 2MB map restores clean
// feedback. Both runs use BigMap, so the 2MB map costs essentially nothing
// — the point of the paper's Table III.
//
// Run with:
//
//	go run ./examples/metric-composition
package main

import (
	"fmt"
	"os"

	"github.com/bigmap/bigmap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metric-composition:", err)
		os.Exit(1)
	}
}

func run() error {
	// Use the Table III composition profile for gvn (heavier magic-compare
	// share and crash density than the Table II throughput benchmark of
	// the same name).
	var profile bigmap.Profile
	found := false
	for _, p := range bigmap.CompositionProfiles() {
		if p.Name == "gvn" {
			profile, found = p, true
			break
		}
	}
	if !found {
		return fmt.Errorf("gvn composition profile missing")
	}
	prog, err := bigmap.Generate(profile.Spec(0.02))
	if err != nil {
		return err
	}

	laf, stats := bigmap.LafIntel(prog, 9)
	fmt.Printf("laf-intel on %s: %d compares + %d switches split\n",
		prog.Name, stats.SplitCompares, stats.SplitSwitches)
	fmt.Printf("  static edges %d -> %d (%.1fx amplification)\n",
		stats.StaticEdgesBefore, stats.StaticEdgesAfter,
		float64(stats.StaticEdgesAfter)/float64(stats.StaticEdgesBefore))

	seeds := bigmap.SynthesizeSeeds(laf, 5, 16)

	for _, size := range []int{bigmap.MapSize64K, bigmap.MapSize2M} {
		f, err := bigmap.NewFuzzer(laf,
			bigmap.WithScheme(bigmap.SchemeBigMap),
			bigmap.WithMapSize(size),
			bigmap.WithNGram(3),
			bigmap.WithSeed(2),
		)
		if err != nil {
			return err
		}
		accepted := 0
		for _, s := range seeds {
			if err := f.AddSeed(s); err == nil {
				accepted++
			}
		}
		if accepted == 0 {
			return fmt.Errorf("no usable seeds")
		}
		if err := f.RunExecs(250000); err != nil {
			return err
		}
		st := f.Stats()
		rate, err := bigmap.CollisionRate(size, max(st.EdgesDiscovered, 1))
		if err != nil {
			return err
		}
		fmt.Printf("\nBigMap + laf-intel + 3-gram at a %7d-slot map:\n", size)
		fmt.Printf("  coverage keys discovered: %d\n", st.EdgesDiscovered)
		fmt.Printf("  collision rate (Eq. 1)  : %.2f%%\n", rate*100)
		fmt.Printf("  unique crashes          : %d\n", st.UniqueCrashes)
	}
	fmt.Println("\npaper Table III shape: same edges, far fewer collisions, more crashes at 2MB")
	return nil
}
