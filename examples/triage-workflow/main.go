// triage-workflow: the full post-campaign pipeline — fuzz with session
// persistence, replay the saved corpus under an exact (bias-free) coverage
// build, bucket the crashes Crashwalk-style, and minimize one witness per
// bucket, all through the public API.
//
// Run with:
//
//	go run ./examples/triage-workflow
package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/bigmap/bigmap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "triage-workflow:", err)
		os.Exit(1)
	}
}

func run() error {
	// A crash-rich target: shallow guard chains so a short demo finds
	// several distinct buckets.
	prog, err := bigmap.Generate(bigmap.GenSpec{
		Name:           "triage-demo",
		Seed:           1234,
		NumFuncs:       10,
		BlocksPerFunc:  18,
		InputLen:       64,
		BranchFraction: 0.6,
		CrashSites:     8,
		CrashDepth:     2,
	})
	if err != nil {
		return err
	}

	// Phase 1: fuzz with an output session.
	dir, err := os.MkdirTemp("", "bigmap-triage-*")
	if err != nil {
		return err
	}
	fmt.Printf("session directory: %s\n", dir)

	session, err := bigmap.NewSession(dir)
	if err != nil {
		return err
	}
	defer session.Close()

	f, err := bigmap.NewFuzzer(prog,
		bigmap.WithScheme(bigmap.SchemeBigMap),
		bigmap.WithMapSize(bigmap.MapSize2M),
		bigmap.WithSeed(1),
	)
	if err != nil {
		return err
	}
	for _, s := range bigmap.SynthesizeSeeds(prog, 2, 8) {
		_ = f.AddSeed(s)
	}
	if f.Queue().Len() == 0 {
		return errors.New("no seeds accepted")
	}
	for burst := 0; burst < 5; burst++ {
		if err := f.RunExecs(30000); err != nil {
			return err
		}
		if err := session.AppendPlot(f.Stats()); err != nil {
			return err
		}
	}
	st := f.Stats()
	if err := session.SaveQueue(f.Queue().Entries()); err != nil {
		return err
	}
	if err := session.SaveCrashes(f.Crashes().Records()); err != nil {
		return err
	}
	if err := session.WriteStats(st, "bigmap", bigmap.MapSize2M); err != nil {
		return err
	}
	fmt.Printf("fuzzing: %d execs, %d paths, %d unique crash buckets\n",
		st.Execs, st.Paths, st.UniqueCrashes)

	// Phase 2: bias-free coverage of the saved corpus (§V-A3 methodology).
	corpus, err := bigmap.LoadCorpus(filepath.Join(dir, "queue"))
	if err != nil {
		return err
	}
	cov := bigmap.NewCoverageReport(prog, 0)
	cov.AddCorpus(corpus)
	fmt.Printf("exact replay of %d corpus files: %d distinct edges, %d blocks\n",
		len(corpus), cov.Edges(), cov.Blocks())

	// Phase 3: minimize one witness per crash bucket.
	minimizer := bigmap.NewMinimizer(prog, 0, 0)
	for _, rec := range f.Crashes().Records() {
		witness, stats, err := minimizer.Minimize(rec.Input)
		if err != nil {
			if errors.Is(err, bigmap.ErrNotACrash) {
				continue
			}
			return err
		}
		fmt.Printf("bucket %016x (site %d, depth %d): %d -> %d bytes, %d normalized\n",
			rec.Key, rec.Site, rec.StackDepth, stats.InLen, stats.OutLen, stats.NormalizedBytes)
		_ = witness
	}
	return nil
}
