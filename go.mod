module github.com/bigmap/bigmap

go 1.22
