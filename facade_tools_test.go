package bigmap_test

import (
	"errors"
	"path/filepath"
	"testing"

	"github.com/bigmap/bigmap"
)

func TestFacadeSessionRoundTrip(t *testing.T) {
	prog := smallProgram(t)
	dir := t.TempDir()

	session, err := bigmap.NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	f, err := bigmap.NewFuzzer(prog, bigmap.WithSeed(21), bigmap.WithScheme(bigmap.SchemeBigMap))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range bigmap.SynthesizeSeeds(prog, 5, 4) {
		_ = f.AddSeed(s)
	}
	if f.Queue().Len() == 0 {
		t.Fatal("no seeds")
	}
	if err := f.RunExecs(3000); err != nil {
		t.Fatal(err)
	}
	if err := session.SaveQueue(f.Queue().Entries()); err != nil {
		t.Fatal(err)
	}
	if err := session.WriteStats(f.Stats(), "bigmap", bigmap.MapSize64K); err != nil {
		t.Fatal(err)
	}

	corpus, err := bigmap.LoadCorpus(filepath.Join(dir, "queue"))
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != f.Queue().Len() {
		t.Errorf("corpus round trip: %d != %d", len(corpus), f.Queue().Len())
	}
}

func TestFacadeCoverageReport(t *testing.T) {
	prog := smallProgram(t)
	cov := bigmap.NewCoverageReport(prog, 0)
	cov.AddCorpus(bigmap.SynthesizeSeeds(prog, 3, 5))
	if cov.Edges() == 0 || cov.Blocks() == 0 {
		t.Error("exact coverage empty")
	}
	total, _, _ := cov.Inputs()
	if total != 5 {
		t.Errorf("inputs = %d", total)
	}
}

func TestFacadeMinimizer(t *testing.T) {
	prog := smallProgram(t)
	m := bigmap.NewMinimizer(prog, 0, 0)
	if _, _, err := m.Minimize(make([]byte, 32)); !errors.Is(err, bigmap.ErrNotACrash) {
		t.Errorf("benign input: err = %v, want ErrNotACrash", err)
	}
}
