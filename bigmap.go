// Package bigmap is a from-scratch Go reproduction of BigMap
// ("BigMap: Future-proofing Fuzzers with Efficient Large Maps", DSN 2021):
// an adaptive two-level coverage bitmap that lets coverage-guided fuzzers
// use arbitrarily large coverage maps — suppressing hash collisions —
// without the per-testcase cost of traversing the full map.
//
// The package is a façade over the internal implementation and is the only
// import external users need. It exposes:
//
//   - the coverage maps (NewAFLMap baseline, NewBigMap) and coverage
//     metrics (edge, N-gram, context-sensitive),
//   - the synthetic instrumented-target substrate (Generate, Profiles)
//     standing in for clang-instrumented binaries,
//   - the laf-intel comparison-splitting pass (LafIntel),
//   - an AFL-style fuzzer (NewFuzzer) and parallel campaigns (NewCampaign),
//   - collision-rate analytics (CollisionRate, BirthdayProbability),
//   - live observability (NewTelemetry, WithTelemetry, TelemetryHandler):
//     an allocation-free metrics registry wired through the hot paths,
//     exposed as Prometheus text, JSON snapshots and pprof over HTTP.
//
// See the examples directory for runnable walkthroughs and DESIGN.md for
// the system inventory.
package bigmap

import (
	"net/http"

	"github.com/bigmap/bigmap/internal/checkpoint"
	"github.com/bigmap/bigmap/internal/collision"
	"github.com/bigmap/bigmap/internal/core"
	"github.com/bigmap/bigmap/internal/covreport"
	"github.com/bigmap/bigmap/internal/fuzzer"
	"github.com/bigmap/bigmap/internal/lafintel"
	"github.com/bigmap/bigmap/internal/output"
	"github.com/bigmap/bigmap/internal/parallel"
	"github.com/bigmap/bigmap/internal/rng"
	"github.com/bigmap/bigmap/internal/target"
	"github.com/bigmap/bigmap/internal/telemetry"
	"github.com/bigmap/bigmap/internal/tmin"
)

// Core coverage-map types, re-exported from the implementation.
type (
	// Map is the scheme-agnostic coverage map interface; AFLMap and
	// BigMap implement it.
	Map = core.Map
	// AFLMap is the flat single-level baseline bitmap.
	AFLMap = core.AFLMap
	// BigMap is the paper's adaptive two-level bitmap.
	BigMap = core.BigMap
	// Virgin is the global-coverage companion map.
	Virgin = core.Virgin
	// Verdict reports what a trace added over global coverage.
	Verdict = core.Verdict
	// Metric converts basic-block events into coverage keys.
	Metric = core.Metric
)

// Verdicts (AFL's has_new_bits results).
const (
	VerdictNone      = core.VerdictNone
	VerdictNewCounts = core.VerdictNewCounts
	VerdictNewEdges  = core.VerdictNewEdges
)

// Common coverage-map sizes from the paper's evaluation.
const (
	MapSize64K  = core.MapSize64K
	MapSize256K = core.MapSize256K
	MapSize2M   = core.MapSize2M
	MapSize8M   = core.MapSize8M
)

// NewAFLMap creates the flat baseline map (size must be a power of two).
func NewAFLMap(size int) (*AFLMap, error) { return core.NewAFLMap(size) }

// NewBigMap creates the two-level map (size must be a power of two).
func NewBigMap(size int) (*BigMap, error) { return core.NewBigMap(size) }

// NewEdgeMetric creates AFL's edge hit-count metric.
func NewEdgeMetric(mapSize int) (Metric, error) { return core.NewEdgeMetric(mapSize) }

// NewNGramMetric creates the N-gram partial-path metric (n >= 2).
func NewNGramMetric(mapSize, n int) (Metric, error) { return core.NewNGramMetric(mapSize, n) }

// NewContextMetric creates the context-sensitive edge metric.
func NewContextMetric(mapSize int) (Metric, error) { return core.NewContextMetric(mapSize) }

// ClassifyByte exposes AFL's hit-count bucketing for documentation and
// tooling.
func ClassifyByte(count byte) byte { return core.ClassifyByte(count) }

// Target substrate types.
type (
	// Program is a synthetic instrumented target.
	Program = target.Program
	// GenSpec parameterizes program generation.
	GenSpec = target.GenSpec
	// Profile is one of the paper's Table II / Table III benchmarks.
	Profile = target.Profile
	// Interp executes a Program.
	Interp = target.Interp
	// Result describes one execution.
	Result = target.Result
	// Tracer receives instrumentation events.
	Tracer = target.Tracer
)

// Execution statuses.
const (
	StatusOK    = target.StatusOK
	StatusCrash = target.StatusCrash
	StatusHang  = target.StatusHang
)

// Generate builds a synthetic program from spec.
func Generate(spec GenSpec) (*Program, error) { return target.Generate(spec) }

// NewInterp creates an interpreter that executes prog directly (the fuzzer
// does this internally; tooling and benchmarks can drive single executions).
func NewInterp(prog *Program) *Interp { return target.NewInterp(prog) }

// Profiles returns the 19 Table II benchmark profiles.
func Profiles() []Profile { return target.Profiles() }

// CompositionProfiles returns the 13 Table III LLVM harness profiles.
func CompositionProfiles() []Profile { return target.CompositionProfiles() }

// ProfileByName looks a profile up by benchmark name.
func ProfileByName(name string) (Profile, bool) { return target.ProfileByName(name) }

// SynthesizeSeeds generates n plausible seed inputs for prog by taking
// randomized branch-solving walks over its CFG — the stand-in for a real
// campaign's seed files. Deterministic in seed.
func SynthesizeSeeds(prog *Program, seed uint64, n int) [][]byte {
	return prog.SampleSeeds(rng.New(seed), n)
}

// LafIntelStats reports what the laf-intel pass did.
type LafIntelStats = lafintel.Stats

// LafIntel applies the laf-intel transformation (multi-byte comparison
// splitting and switch deconstruction) to a program, returning the
// transformed program and amplification statistics.
func LafIntel(p *Program, seed uint64) (*Program, LafIntelStats) {
	return lafintel.Transform(p, seed)
}

// Fuzzing types.
type (
	// Fuzzer is a single AFL-style fuzzing instance.
	Fuzzer = fuzzer.Fuzzer
	// FuzzerConfig is the full configuration struct (functional options
	// cover the common cases).
	FuzzerConfig = fuzzer.Config
	// Stats is a fuzzing progress snapshot.
	Stats = fuzzer.Stats
	// Timings attributes time to the per-testcase phases of Figure 3.
	Timings = fuzzer.Timings
	// Scheme selects the coverage-map implementation.
	Scheme = fuzzer.Scheme
	// Campaign is a parallel master–secondary fuzzing session.
	Campaign = parallel.Campaign
	// CampaignConfig parameterizes a Campaign.
	CampaignConfig = parallel.Config
	// CampaignReport aggregates campaign results.
	CampaignReport = parallel.Report
)

// Map schemes.
const (
	SchemeAFL    = fuzzer.SchemeAFL
	SchemeBigMap = fuzzer.SchemeBigMap
)

// Option customizes a fuzzing instance.
type Option func(*fuzzer.Config)

// WithScheme selects the coverage-map scheme (default SchemeAFL).
func WithScheme(s Scheme) Option { return func(c *fuzzer.Config) { c.Scheme = s } }

// WithMapSize sets the coverage-map size (default 64kB).
func WithMapSize(size int) Option { return func(c *fuzzer.Config) { c.MapSize = size } }

// WithSeed seeds the instance's randomness.
func WithSeed(seed uint64) Option { return func(c *fuzzer.Config) { c.Seed = seed } }

// WithNGram switches coverage to the N-gram metric.
func WithNGram(n int) Option {
	return func(c *fuzzer.Config) {
		c.Metric = func(size int) (core.Metric, error) { return core.NewNGramMetric(size, n) }
	}
}

// WithContextMetric switches coverage to context-sensitive edges.
func WithContextMetric() Option {
	return func(c *fuzzer.Config) {
		c.Metric = func(size int) (core.Metric, error) { return core.NewContextMetric(size) }
	}
}

// WithDeterministicStages enables AFL's deterministic mutation stages.
func WithDeterministicStages() Option {
	return func(c *fuzzer.Config) { c.RunDeterministic = true }
}

// WithTimings records per-phase wall-clock time (Figure 3).
func WithTimings() Option { return func(c *fuzzer.Config) { c.TrackTimings = true } }

// WithSplitClassifyCompare disables the merged classify+compare
// optimization (§IV-E), running the two passes separately like vanilla AFL.
func WithSplitClassifyCompare() Option {
	return func(c *fuzzer.Config) { c.SplitClassifyCompare = true }
}

// WithDictionary supplies mutation dictionary tokens.
func WithDictionary(dict [][]byte) Option {
	return func(c *fuzzer.Config) { c.Dict = dict }
}

// WithExecBudget sets the per-execution virtual cycle budget (hang
// detection).
func WithExecBudget(budget uint64) Option {
	return func(c *fuzzer.Config) { c.ExecBudget = budget }
}

// WithPowerSchedule selects an AFLFast-style power schedule ("fast",
// "explore", "coe", "lin", "quad"; default AFL's exploit behaviour).
func WithPowerSchedule(name string) Option {
	return func(c *fuzzer.Config) { c.Schedule = fuzzer.PowerSchedule(name) }
}

// WithAdaptiveHavoc enables MOpt-style adaptive havoc operator scheduling.
func WithAdaptiveHavoc() Option {
	return func(c *fuzzer.Config) { c.AdaptiveHavoc = true }
}

// WithCmpLog enables RedQueen-style input-to-state mutation: failed
// comparisons observed at runtime are patched directly into the input,
// solving magic-value roadblocks without laf-intel's edge amplification.
func WithCmpLog() Option {
	return func(c *fuzzer.Config) { c.EnableCmpLog = true }
}

// WithExecCostFactor simulates native target execution cost: the executor
// performs this many units of CPU work per virtual cycle after each run,
// restoring the paper's regime where execution time dominates map
// operations at small map sizes.
func WithExecCostFactor(factor int) Option {
	return func(c *fuzzer.Config) { c.ExecCostFactor = factor }
}

// WithCalibration re-executes every new queue entry n times to measure
// target stability: edges that flicker across the runs are recorded as
// variable and excluded from coverage verdicts, AFL's calibrate_case.
// n <= 1 disables calibration.
func WithCalibration(n int) Option {
	return func(c *fuzzer.Config) { c.CalibrationRuns = n }
}

// FaultProfile configures the fault-injecting target wrapper: flaky edges,
// spurious crash/hang verdicts and cycle jitter, all deterministic in the
// profile seed.
type FaultProfile = target.FaultProfile

// SpuriousCrashSite is the crash site reported by injected (fake) crashes.
const SpuriousCrashSite = target.SpuriousCrashSite

// WithFaultProfile wraps the target in the fault injector — the test rig
// for calibration, verdict quarantine and checkpoint robustness against
// real-world target misbehaviour.
func WithFaultProfile(p FaultProfile) Option {
	return func(c *fuzzer.Config) { prof := p; c.Faults = &prof }
}

// WithSlotCap bounds the BigMap's dense-slot region. When the cap fills,
// the map saturates gracefully: new keys are counted as dropped and fuzzing
// continues on established coverage (Stats reports MapSaturated and
// DroppedKeys). 0 means the full map.
func WithSlotCap(n int) Option {
	return func(c *fuzzer.Config) { c.SlotCap = n }
}

// WithSelectiveTracing enables the coverage-preserving untraced fast path:
// after each execution a read-only prefilter (Map.MaybeNew) inspects the raw
// trace, and the full classify-and-compare traversal runs only when the
// filter reports possibly-new coverage. The filter is exact, so campaign
// state — queue, crashes, virgin maps, RNG streams — is bitwise-identical to
// the always-traced pipeline; only throughput changes. Incompatible with
// power schedules and calibration (NewFuzzer returns an error).
func WithSelectiveTracing() Option {
	return func(c *fuzzer.Config) { c.Selective = true }
}

// WithBatchSize batches the havoc stage: n mutants are pre-generated and
// executed back-to-back, amortizing per-execution pipeline overhead (BigMap's
// high-water-marked reset folds into the loop). Campaign state is
// bitwise-identical to the sequential stage. n <= 1 disables batching;
// incompatible with adaptive havoc, power schedules, calibration and the
// Figure-3 timing modes (NewFuzzer returns an error).
func WithBatchSize(n int) Option {
	return func(c *fuzzer.Config) { c.BatchSize = n }
}

// NewFuzzer creates a fuzzing instance for prog.
func NewFuzzer(prog *Program, opts ...Option) (*Fuzzer, error) {
	var cfg fuzzer.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return fuzzer.New(prog, cfg)
}

// NewCampaign creates a parallel master–secondary campaign over shared
// seeds.
func NewCampaign(prog *Program, cfg CampaignConfig, seeds [][]byte) (*Campaign, error) {
	return parallel.NewCampaign(prog, cfg, seeds)
}

// Observability types, re-exported from internal/telemetry.
type (
	// TelemetryRegistry is the process-wide metrics and event registry.
	// A nil registry is valid everywhere and means "telemetry off": record
	// sites reduce to nil checks with no clock reads or allocations.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of every metric.
	TelemetrySnapshot = telemetry.Snapshot
)

// TelemetryEnabled reports whether the binary was built with telemetry
// compiled in (false under the bigmapnotel build tag, where NewTelemetry
// returns nil and the whole layer dead-code-eliminates).
const TelemetryEnabled = telemetry.Enabled

// NewTelemetry creates an observability registry to share across fuzzers and
// campaigns. Under the bigmapnotel build tag it returns nil, which every
// consumer treats as "off".
func NewTelemetry() *TelemetryRegistry { return telemetry.New() }

// WithTelemetry wires a fuzzing instance into an observability registry:
// per-exec and per-stage timing histograms, progress counters, and
// per-operation coverage-map timings. Instances sharing a registry aggregate
// into the same metrics.
func WithTelemetry(r *TelemetryRegistry) Option {
	return func(c *fuzzer.Config) { c.Telemetry = r }
}

// TelemetryHandler serves a registry over HTTP: /metrics (Prometheus text
// format), /stats (JSON snapshot) and /debug/pprof/. Safe with a nil
// registry (metrics endpoints answer 503; pprof still works).
func TelemetryHandler(r *TelemetryRegistry) http.Handler { return telemetry.Handler(r) }

// Checkpoint types: serialized campaign state, written atomically with a
// versioned, checksummed framing (see DESIGN.md §9).
type (
	// FuzzerCheckpoint is one instance's complete serialized state.
	FuzzerCheckpoint = checkpoint.FuzzerState
	// CampaignCheckpoint is a multi-instance campaign's serialized state.
	CampaignCheckpoint = checkpoint.CampaignState
)

// SaveFuzzerCheckpoint snapshots f and writes it to path atomically
// (temp file + rename: a crash mid-write never destroys the previous
// snapshot). Call between Run calls, never concurrently with fuzzing.
// When the instance carries a telemetry registry, the encode+write duration
// and the snapshot size are recorded (checkpoint_save_ns,
// checkpoint_saved_bytes).
func SaveFuzzerCheckpoint(path string, f *Fuzzer) error {
	r := f.Telemetry()
	h := r.Histogram("checkpoint_save_ns")
	t0 := h.Start()
	data := checkpoint.EncodeFuzzer(f.Snapshot())
	err := checkpoint.Save(path, data)
	h.Done(t0)
	r.Gauge("checkpoint_saved_bytes").Set(int64(len(data)))
	return err
}

// LoadFuzzerCheckpoint reads and validates a fuzzer checkpoint; corrupt or
// truncated files are rejected, not guessed at.
func LoadFuzzerCheckpoint(path string) (*FuzzerCheckpoint, error) {
	return checkpoint.LoadFuzzer(path)
}

// ResumeFuzzer reconstructs a fuzzing instance from a checkpoint. prog and
// opts must be the campaign's originals; the resumed instance continues the
// interrupted campaign exactly (identical coverage, queue, stats and RNG
// streams).
func ResumeFuzzer(prog *Program, st *FuzzerCheckpoint, opts ...Option) (*Fuzzer, error) {
	var cfg fuzzer.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return fuzzer.Resume(prog, cfg, st)
}

// SaveCampaignCheckpoint snapshots a campaign (between Run calls) and
// writes it to path atomically, recording the duration and snapshot size
// when the campaign carries a telemetry registry.
func SaveCampaignCheckpoint(path string, c *Campaign) error {
	r := c.Telemetry()
	h := r.Histogram("checkpoint_save_ns")
	t0 := h.Start()
	data := checkpoint.EncodeCampaign(c.Snapshot())
	err := checkpoint.Save(path, data)
	h.Done(t0)
	r.Gauge("checkpoint_saved_bytes").Set(int64(len(data)))
	return err
}

// LoadCampaignCheckpoint reads and validates a campaign checkpoint.
func LoadCampaignCheckpoint(path string) (*CampaignCheckpoint, error) {
	return checkpoint.LoadCampaign(path)
}

// ResumeCampaign reconstructs a parallel campaign from a checkpoint; every
// instance — including ones the supervisor had abandoned — comes back live
// with a fresh restart budget.
func ResumeCampaign(prog *Program, cfg CampaignConfig, st *CampaignCheckpoint) (*Campaign, error) {
	return parallel.Resume(prog, cfg, st)
}

// Session persists a fuzzing campaign in an AFL-style output directory
// (queue/, crashes/, fuzzer_stats, plot_data).
type Session = output.Session

// NewSession creates (or reopens) an output directory.
func NewSession(dir string) (*Session, error) { return output.NewSession(dir) }

// LoadCorpus reads every file of a directory as a seed corpus (sorted by
// name), e.g. a previous session's queue/.
func LoadCorpus(dir string) ([][]byte, error) { return output.LoadCorpus(dir) }

// Minimizer shrinks and normalizes crashing inputs while preserving their
// crash bucket (the afl-tmin role).
type Minimizer = tmin.Minimizer

// MinimizeStats reports a minimization outcome.
type MinimizeStats = tmin.Stats

// ErrNotACrash is returned by Minimizer.Minimize for benign inputs.
var ErrNotACrash = tmin.ErrNotACrash

// NewMinimizer creates a crash minimizer for prog. budget is the
// per-execution cycle budget (0 = default); maxExecs bounds one
// minimization (0 = default).
func NewMinimizer(prog *Program, budget uint64, maxExecs int) *Minimizer {
	return tmin.New(prog, budget, maxExecs)
}

// CoverageReport replays corpora with exact, collision-free edge identities
// — the paper's §V-A3 bias-free independent coverage build.
type CoverageReport = covreport.Report

// NewCoverageReport creates an exact-coverage replayer for prog.
func NewCoverageReport(prog *Program, budget uint64) *CoverageReport {
	return covreport.New(prog, budget)
}

// CollisionRate evaluates the paper's Equation 1: the expected collision
// rate of n uniform draws from a hash space of size h.
func CollisionRate(h, n int) (float64, error) { return collision.Rate(h, n) }

// BirthdayProbability returns the probability of at least one collision
// among n uniform draws from a hash space of size h.
func BirthdayProbability(h, n int) (float64, error) { return collision.BirthdayProbability(h, n) }

// MeasureCollisions computes the empirical collision rate of a key
// sequence.
func MeasureCollisions(keys []uint32) float64 { return collision.Measure(keys) }
