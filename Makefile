# Development targets; CI (.github/workflows/ci.yml) runs `make check`'s
# steps verbatim.

.PHONY: check build test vet race fuzz bench

check: vet build race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Short native-fuzzing smoke of the interpreter safety contract.
fuzz:
	go test -fuzz=FuzzInterp -fuzztime=30s ./internal/target/

bench:
	go test -bench=. -benchtime=1x ./...
