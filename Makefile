# Development targets; CI (.github/workflows/ci.yml) runs `make check`'s
# steps verbatim.

.PHONY: check build test vet vet-json race dbg notel serve-smoke dist-smoke fuzz fuzz-checkpoint fuzz-selffuzz fuzz-all bench bench3 benchcmp bench-smoke bench-all results

check: vet build test race dbg notel

# Static analysis: the stock go vet suite, then the repo's own invariant
# checkers (cmd/bigmap-vet: determinism, kernelparity, codecsymmetry,
# lockcheck, errdrop, allocfree). Any unsuppressed diagnostic fails the
# build; audited sites (//bigmap:<directive> <why>) are counted but pass.
vet:
	go vet ./...
	go run ./cmd/bigmap-vet ./...

# Machine-readable variant of the bigmap-vet run: one JSON report (schema
# internal/analysis.ReportVersion) written to vet-report.json, audited sites
# included. Exit status matches `make vet`'s bigmap-vet step, so this both
# gates and archives — CI uploads the report as an artifact.
vet-json:
	go run ./cmd/bigmap-vet -json ./... > vet-report.json; \
	status=$$?; \
	go run ./cmd/bigmap-vet -summarize vet-report.json; \
	exit $$status

build:
	go build ./...

test:
	go test ./...

# Race detector over the whole tree. -short skips the multi-second
# campaign-scale bench runs (40-50x slower under race, no goroutines of
# their own); every package with real concurrency runs in full.
race:
	go test -race -short -timeout 15m ./...

# Runtime invariant assertions (internal/core/dbg_assert.go) compiled in:
# every core test runs with used_key / high-water-mark / bijection checks
# live.
dbg:
	go test -tags bigmapdbg ./internal/core/

# Telemetry compiled out (telemetry.New returns nil): the whole tree must
# still build, and the suite must pass with every instrument on the nil
# fast path. The default build/test targets cover the tag-off state.
notel:
	go build -tags bigmapnotel ./...
	go test -tags bigmapnotel ./...

# The fuzzing-as-a-service control plane, driven end to end over real HTTP:
# submit, pause/resume/cancel, chaos-kill a worker mid-run and assert
# auto-recovery, SIGTERM drain, restart-and-resume. Plus the package's race
# suite (also covered by `make race`). Needs curl and jq.
serve-smoke:
	go test -race ./internal/serve/
	./scripts/serve-smoke.sh

# The distributed campaign layer, driven end to end over real HTTP through
# the real binaries: start bigmap-corpusd, join two bigmap-fuzz workers,
# assert dedup and delta counters, kill a worker mid-sync and rejoin it,
# verify the ledger, restart the daemon and assert ledger-replay recovery.
# Plus the layer's race suites. Needs curl and jq.
dist-smoke:
	go test -race ./internal/dist/ ./internal/corpusd/
	./scripts/dist-smoke.sh

# Per-target fuzzing budget for every fuzz* target below.
FUZZTIME ?= 30s

# Short native-fuzzing smoke of the interpreter safety contract.
fuzz:
	go test -fuzz=FuzzInterp -fuzztime=$(FUZZTIME) ./internal/target/

# Checkpoint-codec robustness: decoders must reject arbitrary corruption
# without panicking, and accepted inputs must round-trip.
fuzz-checkpoint:
	go test -fuzz=FuzzCheckpointRoundTrip -fuzztime=$(FUZZTIME) ./internal/checkpoint/

# The adversarial self-fuzzing suite's flagship differential: AFL-scheme vs
# BigMap semantics under arbitrary op programs (DESIGN §12).
fuzz-selffuzz:
	go test -fuzz=FuzzSchemeEquivalence -fuzztime=$(FUZZTIME) ./internal/selffuzz/

# Every fuzz target in the tree, one FUZZTIME session each (Go permits a
# single -fuzz pattern per invocation, so the script discovers and loops).
fuzz-all:
	FUZZTIME=$(FUZZTIME) ./scripts/fuzz-all.sh

# Hot-path benchmark sweep (word kernels, batched exec loop, Fig. 3 map ops)
# with allocation counts, emitted as the machine-readable BENCH_2.json.
BENCH_PKGS    := ./internal/core/ ./internal/executor/ .
BENCH_FILTER  := 'Kernel|ExecLoop|Fig3MapOps'
BENCH_TIME    ?= 200x

bench:
	go test -run '^$$' -bench $(BENCH_FILTER) -benchmem -benchtime=$(BENCH_TIME) $(BENCH_PKGS) | tee bench.out
	go run ./cmd/bigmap-bench benchjson -o BENCH_2.json < bench.out
	@rm -f bench.out

# Same sweep emitted as BENCH_3.json — the selective-tracing/batched-exec
# generation. The filter already matches BenchmarkExecLoopSelective/Batched,
# so the new fast paths land in the artifact alongside the shared baselines;
# `make benchcmp` then gates the shared names against BENCH_2.json.
bench3:
	go test -run '^$$' -bench $(BENCH_FILTER) -benchmem -benchtime=$(BENCH_TIME) $(BENCH_PKGS) | tee bench.out
	go run ./cmd/bigmap-bench benchjson -o BENCH_3.json < bench.out
	@rm -f bench.out

# No-regression gate over the checked-in artifacts: every benchmark BENCH_2
# and BENCH_3 share must be within tolerance. Both files were generated on
# the same machine, so the ratio is meaningful where raw CI timings are not.
benchcmp:
	go run ./cmd/bigmap-bench benchcmp BENCH_2.json BENCH_3.json

# CI smoke: same sweep at -benchtime=10x, report discarded after parsing —
# proves every benchmark still runs and the JSON pipeline still parses.
bench-smoke:
	go test -run '^$$' -bench $(BENCH_FILTER) -benchmem -benchtime=10x $(BENCH_PKGS) | go run ./cmd/bigmap-bench benchjson -o /dev/null

# Every benchmark in the repo, one iteration (sanity, not measurement).
bench-all:
	go test -run '^$$' -bench=. -benchtime=1x ./...

# Regenerate every reproducible paper artifact under results/ from the
# declarative grid (experiments.json). Deterministic: consecutive runs are
# byte-identical; schema or header drift fails the run.
results:
	go run ./cmd/bigmap-bench grid -config experiments.json -out results
