package bigmap_test

import (
	"testing"
	"time"

	"github.com/bigmap/bigmap"
)

// TestAllOptionsCompose exercises every functional option end to end.
func TestAllOptionsCompose(t *testing.T) {
	prog := smallProgram(t)
	f, err := bigmap.NewFuzzer(prog,
		bigmap.WithScheme(bigmap.SchemeBigMap),
		bigmap.WithMapSize(bigmap.MapSize256K),
		bigmap.WithSeed(99),
		bigmap.WithContextMetric(),
		bigmap.WithTimings(),
		bigmap.WithSplitClassifyCompare(),
		bigmap.WithDictionary([][]byte{[]byte("tok")}),
		bigmap.WithExecBudget(1<<20),
		bigmap.WithExecCostFactor(1),
		bigmap.WithPowerSchedule("fast"),
		bigmap.WithCmpLog(),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range bigmap.SynthesizeSeeds(prog, 1, 4) {
		_ = f.AddSeed(s)
	}
	if f.Queue().Len() == 0 {
		t.Fatal("no seeds accepted")
	}
	if err := f.RunExecs(2000); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Execs < 2000 {
		t.Errorf("execs = %d", st.Execs)
	}
	tm := st.Timings
	if tm.Classify == 0 || tm.Compare == 0 {
		t.Error("split timings not recorded")
	}
}

func TestWithDeterministicStagesOption(t *testing.T) {
	prog := smallProgram(t)
	f, err := bigmap.NewFuzzer(prog, bigmap.WithDeterministicStages(), bigmap.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range bigmap.SynthesizeSeeds(prog, 2, 2) {
		_ = f.AddSeed(s)
	}
	if f.Queue().Len() == 0 {
		t.Fatal("no seeds")
	}
	if err := f.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Execs == 0 {
		t.Error("RunFor executed nothing")
	}
}

func TestWithNGramRejectsBadN(t *testing.T) {
	prog := smallProgram(t)
	if _, err := bigmap.NewFuzzer(prog, bigmap.WithNGram(1)); err == nil {
		t.Error("ngram n=1 accepted")
	}
}

func TestWithPowerScheduleRejectsBogus(t *testing.T) {
	prog := smallProgram(t)
	if _, err := bigmap.NewFuzzer(prog, bigmap.WithPowerSchedule("bogus")); err == nil {
		t.Error("bogus schedule accepted")
	}
}
