package bigmap_test

import (
	"testing"
	"time"

	"github.com/bigmap/bigmap"
)

// TestAllOptionsCompose exercises every functional option end to end.
func TestAllOptionsCompose(t *testing.T) {
	prog := smallProgram(t)
	f, err := bigmap.NewFuzzer(prog,
		bigmap.WithScheme(bigmap.SchemeBigMap),
		bigmap.WithMapSize(bigmap.MapSize256K),
		bigmap.WithSeed(99),
		bigmap.WithContextMetric(),
		bigmap.WithTimings(),
		bigmap.WithSplitClassifyCompare(),
		bigmap.WithDictionary([][]byte{[]byte("tok")}),
		bigmap.WithExecBudget(1<<20),
		bigmap.WithExecCostFactor(1),
		bigmap.WithPowerSchedule("fast"),
		bigmap.WithCmpLog(),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range bigmap.SynthesizeSeeds(prog, 1, 4) {
		_ = f.AddSeed(s)
	}
	if f.Queue().Len() == 0 {
		t.Fatal("no seeds accepted")
	}
	if err := f.RunExecs(2000); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Execs < 2000 {
		t.Errorf("execs = %d", st.Execs)
	}
	tm := st.Timings
	if tm.Classify == 0 || tm.Compare == 0 {
		t.Error("split timings not recorded")
	}
}

func TestWithDeterministicStagesOption(t *testing.T) {
	prog := smallProgram(t)
	f, err := bigmap.NewFuzzer(prog, bigmap.WithDeterministicStages(), bigmap.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range bigmap.SynthesizeSeeds(prog, 2, 2) {
		_ = f.AddSeed(s)
	}
	if f.Queue().Len() == 0 {
		t.Fatal("no seeds")
	}
	if err := f.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Execs == 0 {
		t.Error("RunFor executed nothing")
	}
}

func TestWithNGramRejectsBadN(t *testing.T) {
	prog := smallProgram(t)
	if _, err := bigmap.NewFuzzer(prog, bigmap.WithNGram(1)); err == nil {
		t.Error("ngram n=1 accepted")
	}
}

func TestWithPowerScheduleRejectsBogus(t *testing.T) {
	prog := smallProgram(t)
	if _, err := bigmap.NewFuzzer(prog, bigmap.WithPowerSchedule("bogus")); err == nil {
		t.Error("bogus schedule accepted")
	}
}

// TestRobustnessOptionsAndCheckpoint exercises the robustness surface of
// the facade: calibration + fault injection feed the stability stats, a
// slot-capped BigMap saturates gracefully, and a checkpoint written through
// the file API resumes into an instance that continues the same campaign.
func TestRobustnessOptionsAndCheckpoint(t *testing.T) {
	prog := smallProgram(t)
	opts := []bigmap.Option{
		bigmap.WithScheme(bigmap.SchemeBigMap),
		bigmap.WithMapSize(bigmap.MapSize64K),
		bigmap.WithSeed(41),
		bigmap.WithCalibration(3),
		bigmap.WithSlotCap(64),
		bigmap.WithFaultProfile(bigmap.FaultProfile{
			Seed: 5, FlakyEdgeFraction: 200, DropRate: 300,
		}),
	}
	f, err := bigmap.NewFuzzer(prog, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range bigmap.SynthesizeSeeds(prog, 1, 4) {
		_ = f.AddSeed(s)
	}
	if f.Queue().Len() == 0 {
		t.Fatal("no seeds accepted")
	}
	if err := f.RunExecs(4000); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.CalibExecs == 0 {
		t.Error("calibration never ran")
	}
	if st.Stability >= 100 || st.VariableEdges == 0 {
		t.Errorf("faulty target reported stability %.2f%% / %d variable edges",
			st.Stability, st.VariableEdges)
	}

	path := t.TempDir() + "/run.bmcp"
	if err := bigmap.SaveFuzzerCheckpoint(path, f); err != nil {
		t.Fatal(err)
	}
	snap, err := bigmap.LoadFuzzerCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := bigmap.ResumeFuzzer(prog, snap, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if g.Execs() != f.Execs() || g.Queue().Len() != f.Queue().Len() {
		t.Errorf("resumed instance at %d execs / %d paths, want %d / %d",
			g.Execs(), g.Queue().Len(), f.Execs(), f.Queue().Len())
	}
	if err := g.RunExecs(1000); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignCheckpointFacade round-trips a parallel campaign through the
// campaign checkpoint API.
func TestCampaignCheckpointFacade(t *testing.T) {
	prog := smallProgram(t)
	seeds := bigmap.SynthesizeSeeds(prog, 2, 4)
	c, err := bigmap.NewCampaign(prog, bigmap.CampaignConfig{
		Instances: 2,
		SyncEvery: 1000,
		Fuzzer:    bigmap.FuzzerConfig{Seed: 42, Scheme: bigmap.SchemeBigMap},
	}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/campaign.bmcp"
	if err := bigmap.SaveCampaignCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	snap, err := bigmap.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := bigmap.ResumeCampaign(prog, bigmap.CampaignConfig{
		Fuzzer: bigmap.FuzzerConfig{Seed: 42, Scheme: bigmap.SchemeBigMap},
	}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.RunRounds(1); err != nil {
		t.Fatal(err)
	}
	if got, was := c2.Report().TotalExecs, c.Report().TotalExecs; got <= was {
		t.Errorf("resumed campaign did not progress: %d <= %d", got, was)
	}
}
