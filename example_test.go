package bigmap_test

import (
	"fmt"

	"github.com/bigmap/bigmap"
)

// ExampleNewBigMap demonstrates the two-level update of the paper's
// Figure 4: scattered coverage keys condense into sequential slots.
func ExampleNewBigMap() {
	m, err := bigmap.NewBigMap(bigmap.MapSize64K)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Three scattered keys (edge IDs) arrive in this order.
	for _, key := range []uint32{51234, 7, 30000, 7} {
		m.Add(key)
	}
	fmt.Println("used_key:", m.UsedKeys())
	fmt.Println("slot of 51234:", m.SlotForKey(51234))
	fmt.Println("slot of 7:", m.SlotForKey(7))
	fmt.Println("slot of 30000:", m.SlotForKey(30000))
	// Output:
	// used_key: 3
	// slot of 51234: 0
	// slot of 7: 1
	// slot of 30000: 2
}

// ExampleCollisionRate reproduces Table II's sqlite3 collision rate from
// Equation 1.
func ExampleCollisionRate() {
	rate, err := bigmap.CollisionRate(bigmap.MapSize64K, 40948)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.2f%%\n", rate*100)
	// Output:
	// 25.64%
}

// ExampleClassifyByte shows AFL's hit-count bucketing (§II-A2).
func ExampleClassifyByte() {
	for _, count := range []byte{1, 2, 3, 5, 20, 200} {
		fmt.Printf("count %3d -> bucket bit %#02x\n", count, bigmap.ClassifyByte(count))
	}
	// Output:
	// count   1 -> bucket bit 0x01
	// count   2 -> bucket bit 0x02
	// count   3 -> bucket bit 0x04
	// count   5 -> bucket bit 0x08
	// count  20 -> bucket bit 0x20
	// count 200 -> bucket bit 0x80
}

// ExampleNewFuzzer runs a miniature campaign end to end.
func ExampleNewFuzzer() {
	prog, err := bigmap.Generate(bigmap.GenSpec{
		Name: "example", Seed: 3,
		NumFuncs: 2, BlocksPerFunc: 8, InputLen: 16,
		BranchFraction: 0.5,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	f, err := bigmap.NewFuzzer(prog,
		bigmap.WithScheme(bigmap.SchemeBigMap),
		bigmap.WithMapSize(bigmap.MapSize64K),
		bigmap.WithSeed(1),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range bigmap.SynthesizeSeeds(prog, 1, 2) {
		if err := f.AddSeed(s); err != nil {
			fmt.Println(err)
			return
		}
	}
	if err := f.RunExecs(2000); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("ran at least 2000 execs:", f.Stats().Execs >= 2000)
	fmt.Println("discovered coverage:", f.Stats().EdgesDiscovered > 0)
	// Output:
	// ran at least 2000 execs: true
	// discovered coverage: true
}

// ExampleLafIntel shows the comparison-splitting transformation.
func ExampleLafIntel() {
	prog, err := bigmap.Generate(bigmap.GenSpec{
		Name: "laf-example", Seed: 5,
		NumFuncs: 1, BlocksPerFunc: 8, InputLen: 16,
		MagicCompares: 2, MagicWidth: 4,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	_, stats := bigmap.LafIntel(prog, 1)
	fmt.Println("compares split:", stats.SplitCompares)
	fmt.Println("edges amplified:", stats.StaticEdgesAfter > stats.StaticEdgesBefore)
	// Output:
	// compares split: 2
	// edges amplified: true
}
